type method_ = Bmf_zm | Bmf_nzm | Bmf_ps

let method_name = function
  | Bmf_zm -> "BMF-ZM"
  | Bmf_nzm -> "BMF-NZM"
  | Bmf_ps -> "BMF-PS"

type config = {
  solver : Map_solver.solver option;
  cv_folds : int;
  candidates : Hyper.grid option;
}

let default_config = { solver = None; cv_folds = 4; candidates = None }

type fitted = {
  coeffs : Linalg.Vec.t;
  prior : Prior.t;
  prior_kind : Prior.kind;
  hyper : float;
  cv_error : float;
}

(* Fit-time numerical health: prior-selection outcome, chosen
   hyperparameter, problem shape and training residual. All recording is
   gated on [Obs.live] — the extra residual GEMV never runs on the
   default path, and never feeds back into the fit. *)
let m_fit_samples =
  Obs.Metrics.gauge ~help:"Late-stage sample count K of the last fit"
    "bmf_fit_samples"

let m_fit_terms =
  Obs.Metrics.gauge ~help:"Basis size M of the last fit" "bmf_fit_terms"

let m_fit_hyper =
  Obs.Metrics.gauge ~help:"Selected hyperparameter of the last fit"
    "bmf_fit_hyper"

let m_fit_cv_error =
  Obs.Metrics.gauge ~help:"CV error of the last fit" "bmf_fit_cv_error"

let m_fit_nonzero_mean =
  Obs.Metrics.gauge
    ~help:"1 when the last fit selected the nonzero-mean prior, else 0"
    "bmf_fit_prior_nonzero_mean"

let m_fit_residual =
  Obs.Metrics.gauge
    ~help:"Training residual norm |f - G alpha| of the last fit"
    "bmf_fit_train_residual_norm"

let m_fit_residual_rel =
  Obs.Metrics.gauge
    ~help:"Relative training residual |f - G alpha| / |f| of the last fit"
    "bmf_fit_train_residual_rel"

let m_fit_seconds =
  Obs.Metrics.histogram ~help:"End-to-end fit latency (seconds)"
    "bmf_fit_seconds"

let m_fits =
  Obs.Metrics.counter ~help:"BMF fits performed" "bmf_fits_total"

let select_for_prior ?rng ~config ~g ~f prior =
  let hyper, cv_error =
    Hyper.select ?rng ?solver:config.solver ~folds:config.cv_folds
      ?candidates:config.candidates ~g ~f ~prior ()
  in
  (prior, hyper, cv_error)

let fit_design ?rng ?(config = default_config) ~early ~g ~f method_ =
  if Array.length early <> Linalg.Mat.cols g then
    invalid_arg "Fusion.fit_design: early coefficient length mismatch";
  Obs.Trace.with_span ~cat:"core" "bmf_fit" @@ fun sp ->
  let k, m = Linalg.Mat.dims g in
  Obs.Trace.set_attr sp "method" (Obs.Trace.Str (method_name method_));
  Obs.Trace.set_attr sp "samples" (Obs.Trace.Int k);
  Obs.Trace.set_attr sp "terms" (Obs.Trace.Int m);
  let t0 = if Obs.live () then Obs.Clock.now_s () else 0. in
  let choices =
    match method_ with
    | Bmf_zm -> [ Prior.zero_mean early ]
    | Bmf_nzm -> [ Prior.nonzero_mean early ]
    | Bmf_ps -> [ Prior.zero_mean early; Prior.nonzero_mean early ]
  in
  let scored =
    List.map (select_for_prior ?rng ~config ~g ~f) choices
  in
  let prior, hyper, cv_error =
    match scored with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun ((_, _, be) as best) ((_, _, e) as cur) ->
            if e < be then cur else best)
          first rest
  in
  let coeffs =
    Map_solver.solve ?solver:config.solver ~g ~f ~prior ~hyper ()
  in
  if Obs.live () then begin
    let kind = prior.Prior.kind in
    let kind_name = Prior.kind_name kind in
    let nonzero = match kind with Prior.Nonzero_mean -> 1. | _ -> 0. in
    let resid = Linalg.Vec.sub f (Linalg.Mat.gemv g coeffs) in
    let rnorm = Linalg.Vec.nrm2 resid in
    let fnorm = Linalg.Vec.nrm2 f in
    Obs.Trace.set_attr sp "prior_kind" (Obs.Trace.Str kind_name);
    Obs.Trace.set_attr sp "hyper" (Obs.Trace.Float hyper);
    Obs.Trace.set_attr sp "cv_error" (Obs.Trace.Float cv_error);
    Obs.Trace.set_attr sp "train_residual_norm" (Obs.Trace.Float rnorm);
    Obs.Metrics.set m_fit_samples (float_of_int k);
    Obs.Metrics.set m_fit_terms (float_of_int m);
    Obs.Metrics.set m_fit_hyper hyper;
    Obs.Metrics.set m_fit_cv_error cv_error;
    Obs.Metrics.set m_fit_nonzero_mean nonzero;
    Obs.Metrics.set m_fit_residual rnorm;
    Obs.Metrics.set m_fit_residual_rel
      (if fnorm > 0. then rnorm /. fnorm else rnorm);
    Obs.Metrics.observe m_fit_seconds (Obs.Clock.now_s () -. t0);
    Obs.Metrics.inc m_fits
  end;
  { coeffs; prior; prior_kind = prior.Prior.kind; hyper; cv_error }

let chain ?rng ?config ~early stages method_ =
  if stages = [] then invalid_arg "Fusion.chain: no stages";
  let _, fits =
    List.fold_left
      (fun (early, acc) (g, f) ->
        let fitted = fit_design ?rng ?config ~early ~g ~f method_ in
        let next = Array.map (fun c -> Some c) fitted.coeffs in
        (next, fitted :: acc))
      (early, []) stages
  in
  List.rev fits

let fit ?rng ?config ~early ~basis ~xs ~f method_ =
  let g = Polybasis.Basis.design_matrix basis xs in
  let fitted = fit_design ?rng ?config ~early ~g ~f method_ in
  (Regression.Model.create basis fitted.coeffs, fitted)
