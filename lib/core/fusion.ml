type method_ = Bmf_zm | Bmf_nzm | Bmf_ps

let method_name = function
  | Bmf_zm -> "BMF-ZM"
  | Bmf_nzm -> "BMF-NZM"
  | Bmf_ps -> "BMF-PS"

type config = {
  solver : Map_solver.solver option;
  cv_folds : int;
  candidates : Hyper.grid option;
}

let default_config = { solver = None; cv_folds = 4; candidates = None }

type fitted = {
  coeffs : Linalg.Vec.t;
  prior : Prior.t;
  prior_kind : Prior.kind;
  hyper : float;
  cv_error : float;
}

let select_for_prior ?rng ~config ~g ~f prior =
  let hyper, cv_error =
    Hyper.select ?rng ?solver:config.solver ~folds:config.cv_folds
      ?candidates:config.candidates ~g ~f ~prior ()
  in
  (prior, hyper, cv_error)

let fit_design ?rng ?(config = default_config) ~early ~g ~f method_ =
  if Array.length early <> Linalg.Mat.cols g then
    invalid_arg "Fusion.fit_design: early coefficient length mismatch";
  let choices =
    match method_ with
    | Bmf_zm -> [ Prior.zero_mean early ]
    | Bmf_nzm -> [ Prior.nonzero_mean early ]
    | Bmf_ps -> [ Prior.zero_mean early; Prior.nonzero_mean early ]
  in
  let scored =
    List.map (select_for_prior ?rng ~config ~g ~f) choices
  in
  let prior, hyper, cv_error =
    match scored with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun ((_, _, be) as best) ((_, _, e) as cur) ->
            if e < be then cur else best)
          first rest
  in
  let coeffs =
    Map_solver.solve ?solver:config.solver ~g ~f ~prior ~hyper ()
  in
  { coeffs; prior; prior_kind = prior.Prior.kind; hyper; cv_error }

let chain ?rng ?config ~early stages method_ =
  if stages = [] then invalid_arg "Fusion.chain: no stages";
  let _, fits =
    List.fold_left
      (fun (early, acc) (g, f) ->
        let fitted = fit_design ?rng ?config ~early ~g ~f method_ in
        let next = Array.map (fun c -> Some c) fitted.coeffs in
        (next, fitted :: acc))
      (early, []) stages
  in
  List.rev fits

let fit ?rng ?config ~early ~basis ~xs ~f method_ =
  let g = Polybasis.Basis.design_matrix basis xs in
  let fitted = fit_design ?rng ?config ~early ~g ~f method_ in
  (Regression.Model.create basis fitted.coeffs, fitted)
