type solver = Direct_cholesky | Fast_woodbury

let solver_name = function
  | Direct_cholesky -> "cholesky"
  | Fast_woodbury -> "fast-woodbury"

(* Numerical-health telemetry, recorded only when a sink is live. The
   gauges capture the conditioning of the last system each path solved:
   the K x K Woodbury core for the fast path, the prior-scaled M x M
   normal matrix for the direct path. *)
let m_solve_seconds =
  Obs.Metrics.histogram ~help:"MAP solve latency (seconds)"
    "bmf_map_solve_seconds"

let m_solves =
  Obs.Metrics.counter ~help:"MAP solves performed" "bmf_map_solves_total"

let m_woodbury_cond =
  Obs.Metrics.gauge
    ~help:"Condition estimate of the last Woodbury core solved at fit time"
    "bmf_fit_woodbury_cond"

let m_direct_cond =
  Obs.Metrics.gauge
    ~help:"Condition estimate of the last direct (Cholesky) MAP system"
    "bmf_fit_cholesky_cond"

let m_pivot_min =
  Obs.Metrics.gauge ~help:"Smallest Cholesky pivot of the last MAP solve"
    "bmf_map_solve_pivot_min"

(* Spans want the conditioning too, and the gauges only record when the
   metrics sink is on — so the solvers also stash the last estimate here
   for the enclosing span (trace-only runs included). *)
let last_cond = ref nan

let check ~g ~f ~weights ~means ~hyper =
  let k, m = Linalg.Mat.dims g in
  if Array.length f <> k then invalid_arg "Map_solver: sample count mismatch";
  if Array.length weights <> m then
    invalid_arg "Map_solver: weight length mismatch";
  if Array.length means <> m then invalid_arg "Map_solver: mean length mismatch";
  if hyper <= 0. || not (Float.is_finite hyper) then
    invalid_arg "Map_solver: hyper must be positive and finite";
  Array.iter
    (fun w ->
      if w <= 0. || not (Float.is_finite w) then
        invalid_arg "Map_solver: weights must be positive and finite")
    weights

(* Residual of the prior mean: f - G mu. Skipped when mu = 0. *)
let prior_residual ~g ~f ~means =
  if Array.for_all (fun x -> x = 0.) means then f
  else Linalg.Vec.sub f (Linalg.Mat.gemv g means)

(* Direct path (eq. 28-35): the M x M system, solved in the prior-scaled
   basis alpha = mu + S gamma with S = diag(w^-1/2):
     (S G^T G S + t I) gamma = S G^T (f - G mu).
   Mathematically identical to (G^T G + t W) beta = G^T (f - G mu) but
   with a condition number independent of the weight spread. *)
let solve_direct ~g ~f ~weights ~means ~hyper =
  let m = Linalg.Mat.cols g in
  let r = prior_residual ~g ~f ~means in
  let s = Array.map (fun w -> 1. /. sqrt w) weights in
  let gs = Linalg.Mat.mul_cols g s in
  let gram = Linalg.Mat.gram gs in
  let shifted = Linalg.Mat.add_diag gram (Array.make m hyper) in
  let rhs = Linalg.Mat.gemv_t gs r in
  let fact = Linalg.Cholesky.factorize shifted in
  if Obs.live () then begin
    last_cond := Linalg.Cholesky.cond_estimate fact;
    Obs.Metrics.set m_direct_cond !last_cond;
    Obs.Metrics.set m_pivot_min (fst (Linalg.Cholesky.pivot_extrema fact))
  end;
  let gamma = Linalg.Cholesky.solve fact rhs in
  Array.init m (fun i -> means.(i) +. (s.(i) *. gamma.(i)))

(* Fast path (eq. 53-58): the paper's low-rank identity, in the stable
   dual form
     alpha = mu + W^-1 G^T (t I + G W^-1 G^T)^-1 (f - G mu)
   with a single K x K Cholesky solve. Exact — tests assert agreement
   with the direct path to roundoff. *)
let solve_fast ~g ~f ~weights ~means ~hyper =
  let k, m = Linalg.Mat.dims g in
  let r = prior_residual ~g ~f ~means in
  let w_inv = Array.map (fun w -> 1. /. w) weights in
  let core = Linalg.Mat.weighted_outer_gram g w_inv in
  let shifted = Linalg.Mat.add_diag core (Array.make k hyper) in
  let fact = Linalg.Cholesky.factorize shifted in
  if Obs.live () then begin
    last_cond := Linalg.Cholesky.cond_estimate fact;
    Obs.Metrics.set m_woodbury_cond !last_cond;
    Obs.Metrics.set m_pivot_min (fst (Linalg.Cholesky.pivot_extrema fact))
  end;
  let v = Linalg.Cholesky.solve fact r in
  let gtv = Linalg.Mat.gemv_t g v in
  Array.init m (fun i -> means.(i) +. (w_inv.(i) *. gtv.(i)))

let dispatch ~solver ~g ~f ~weights ~means ~hyper =
  match solver with
  | Direct_cholesky -> solve_direct ~g ~f ~weights ~means ~hyper
  | Fast_woodbury -> solve_fast ~g ~f ~weights ~means ~hyper

let solve_raw ~solver ~g ~f ~weights ~means ~hyper =
  check ~g ~f ~weights ~means ~hyper;
  if not (Obs.live ()) then dispatch ~solver ~g ~f ~weights ~means ~hyper
  else
    Obs.Trace.with_span ~cat:"core" "map_solve" (fun sp ->
        let k, m = Linalg.Mat.dims g in
        Obs.Trace.set_attr sp "solver" (Obs.Trace.Str (solver_name solver));
        Obs.Trace.set_attr sp "samples" (Obs.Trace.Int k);
        Obs.Trace.set_attr sp "terms" (Obs.Trace.Int m);
        Obs.Trace.set_attr sp "hyper" (Obs.Trace.Float hyper);
        let t0 = Obs.Clock.now_s () in
        let x = dispatch ~solver ~g ~f ~weights ~means ~hyper in
        Obs.Metrics.observe m_solve_seconds (Obs.Clock.now_s () -. t0);
        Obs.Metrics.inc m_solves;
        Obs.Trace.set_attr sp "cond_estimate" (Obs.Trace.Float !last_cond);
        x)

let solve ?solver ~g ~f ~prior ~hyper () =
  let k, m = Linalg.Mat.dims g in
  let solver =
    match solver with
    | Some s -> s
    | None -> if k < m then Fast_woodbury else Direct_cholesky
  in
  solve_raw ~solver ~g ~f ~weights:prior.Prior.weights
    ~means:prior.Prior.means ~hyper
