(** Prior distributions over late-stage model coefficients (paper
    Sec. III-A and IV-B).

    Each coefficient's prior is a Gaussian built from the early-stage
    coefficient [alpha_E,m]:

    - zero-mean (eq. 12, 16-17): [N(0, alpha_E,m^2)];
    - nonzero-mean (eq. 19-20): [N(alpha_E,m, lambda^2 alpha_E,m^2)].

    Coefficients whose early-stage information is missing (late-stage-only
    basis functions, Sec. IV-B, eq. 50-51) get an effectively flat prior.

    Internally a prior is reduced to the pair (mean, weight) per
    coefficient, with [weight = 1 / variance_scale] where
    [variance_scale = alpha_E,m^2]; the hyper-parameter ([sigma_0^2] or
    [eta]) multiplies the weights uniformly at solve time, so it is not
    stored here.

    Numerical conventions (documented deviations from the idealized
    paper formulas):
    - [|alpha_E,m|] is floored at [mag_floor_rel * max_m |alpha_E,m|]
      (default 1e-4) so an exactly-zero early coefficient yields a very
      tight — not degenerate — prior;
    - a missing prior uses a weight of [1e-4 * median informed weight]
      (prior std 100x the median coefficient scale: effectively flat)
      instead of exactly zero, keeping the MAP system positive definite
      and its condition number workable in double precision. *)

type kind = Zero_mean | Nonzero_mean

type t = private {
  kind : kind;
  means : Linalg.Vec.t;  (** Prior mean per coefficient. *)
  weights : Linalg.Vec.t;  (** Inverse variance-scale per coefficient. *)
  informed : bool array;  (** [false] where the prior was missing. *)
}

val zero_mean : ?mag_floor_rel:float -> float option array -> t
(** [zero_mean early] builds the eq. 12-17 prior. [None] entries are
    missing priors ([sigma_m = +inf], eq. 50).
    @raise Invalid_argument on an empty array. *)

val nonzero_mean : ?mag_floor_rel:float -> float option array -> t
(** [nonzero_mean early] builds the eq. 19-20 prior. [None] entries are
    missing priors ([alpha_E,m = +inf], eq. 51). *)

val make : kind -> float option array -> t
(** Dispatches on [kind]. *)

val of_raw :
  kind:kind ->
  means:Linalg.Vec.t ->
  weights:Linalg.Vec.t ->
  informed:bool array ->
  t
(** Rebuilds a prior from its stored representation (arrays are copied).
    Intended for deserialization of fitted-model artifacts; fresh priors
    should use {!zero_mean} / {!nonzero_mean}, which derive the weights
    from early coefficients.
    @raise Invalid_argument on empty or mismatched arrays, non-positive
    or non-finite weights, or non-finite means. *)

val size : t -> int

val kind_name : kind -> string
(** ["BMF-ZM"] or ["BMF-NZM"], the paper's labels. *)

val log_pdf : t -> hyper:float -> Linalg.Vec.t -> float
(** Log prior density of a coefficient vector, up to the additive
    constant contributed by missing-prior coordinates. For the zero-mean
    prior [hyper] is ignored (the variances are fully determined by
    eq. 16); for the nonzero-mean prior [hyper] is [lambda^2]. *)
