(* The model-serving lifecycle end to end: fit a fused model once, save
   it as a checksummed artifact, load it back in a "serving process",
   and then keep it current as late-stage silicon data trickles in —
   each batch folded into the stored posterior by exact rank-1
   bordering updates (lib/serving/incremental.ml), never a full refit.

   Every incremental result is cross-checked against a cold refit on
   the union of all samples: the two agree to roundoff, while the
   update costs O(K' (KM + K^2)) instead of O(K^2 M + K^3).

   Run with: dune exec examples/online_fusion.exe *)

let () =
  let rng = Stats.Rng.create 60613 in
  let r = 30 and k0 = 40 in
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i -> if i = 0 then 1.5 else 0.8 /. float_of_int (i + 1))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
      truth
  in
  let sigma_noise = 0.02 in
  let sample k =
    let xs = Stats.Sampling.monte_carlo rng ~k ~r in
    let g = Polybasis.Basis.design_matrix basis xs in
    let f =
      Array.init k (fun i ->
          Linalg.Vec.dot (Linalg.Mat.row g i) truth
          +. (sigma_noise *. Stats.Rng.gaussian rng))
    in
    (xs, g, f)
  in

  (* --- day 0: fit from the first late-stage batch and persist ------- *)
  let _, g, f = sample k0 in
  let prior = Bmf.Prior.nonzero_mean early in
  let hyper, _ = Bmf.Hyper.select ~rng ~g ~f ~prior () in
  let meta =
    {
      Serving.Artifact.circuit = "synthetic";
      metric = "response";
      scale = "example";
      seed = 60613;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis ~prior ~hyper ~g ~f ()
  in
  let root = Filename.concat (Filename.get_temp_dir_name ()) "bmf-online" in
  let file = Serving.Store.save ~root artifact in
  Printf.printf "day 0: fitted on %d samples (M = %d, hyper %.3g)\n" k0 m hyper;
  Printf.printf "       saved %s\n\n" file;

  (* --- serving process: load and predict --------------------------- *)
  let artifact =
    match Serving.Store.load ~root meta with
    | Ok a -> a
    | Error e -> failwith e
  in
  let predictor = Serving.Predictor.of_artifact artifact in
  let probe = Stats.Rng.gaussian_vec rng r in
  let mean, std = Serving.Predictor.predict_point_with_std predictor probe in
  Printf.printf "loaded rev %d from disk; probe prediction %+.5f (+/- %.4f)\n\n"
    artifact.rev mean std;

  (* --- days 1..3: stream new batches through the online updater ----- *)
  let upd = Serving.Incremental.of_artifact artifact in
  let all_g = ref artifact.g and all_f = ref artifact.f in
  List.iteri
    (fun day k_new ->
      let xs_new, g_new, f_new = sample k_new in
      let t0 = Unix.gettimeofday () in
      Serving.Incremental.add_batch upd ~xs:xs_new ~f:f_new;
      let coeffs = Serving.Incremental.coeffs upd in
      let t_inc = Unix.gettimeofday () -. t0 in
      (* cold refit on everything seen so far, for comparison *)
      let rows0 = Linalg.Mat.rows !all_g in
      all_g :=
        Linalg.Mat.init
          (rows0 + k_new)
          m
          (fun i j ->
            if i < rows0 then Linalg.Mat.get !all_g i j
            else Linalg.Mat.get g_new (i - rows0) j);
      all_f := Array.append !all_f f_new;
      let t1 = Unix.gettimeofday () in
      let cold =
        Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:!all_g
          ~f:!all_f ~prior ~hyper ()
      in
      let t_refit = Unix.gettimeofday () -. t1 in
      let err = Linalg.Vec.norm_inf (Linalg.Vec.sub coeffs cold) in
      Printf.printf
        "day %d: +%2d samples -> K = %3d   incremental %.3f ms | refit %.3f \
         ms   max diff %.2e\n"
        (day + 1) k_new
        (Serving.Incremental.num_samples upd)
        (1e3 *. t_inc) (1e3 *. t_refit) err;
      assert (err < 1e-8))
    [ 15; 25; 40 ];

  (* --- persist the updated model back to the registry --------------- *)
  let updated = Serving.Incremental.to_artifact upd in
  let file = Serving.Store.save ~root updated in
  Printf.printf "\nsaved rev %d (K = %d) back to %s\n" updated.rev
    (Serving.Artifact.num_samples updated)
    file;
  let predictor = Serving.Predictor.of_artifact updated in
  let mean, std = Serving.Predictor.predict_point_with_std predictor probe in
  Printf.printf "probe prediction after updates %+.5f (+/- %.4f)\n" mean std;
  Printf.printf "truth at probe                 %+.5f\n"
    (Linalg.Vec.dot (Polybasis.Basis.eval_row basis probe) truth)
