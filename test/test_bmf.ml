(* Unit and property tests for the BMF core: priors, MAP solvers,
   hyper-parameter selection, prior mapping, posterior, and Algorithm 1
   end to end. *)

let check_float = Alcotest.(check (float 1e-9))

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let rng = Stats.Rng.create 4242

let some v = Some v

(* A two-stage synthetic problem: late truth = perturbed early truth. *)
type synth = {
  basis : Polybasis.Basis.t;
  truth : Linalg.Vec.t;
  early : float option array;
  g : Linalg.Mat.t;
  f : Linalg.Vec.t;
  g_test : Linalg.Mat.t;
  f_test : Linalg.Vec.t;
}

let make_synth ?(k = 60) ?(r = 150) ?(noise = 0.01) ?(drift = 0.15) () =
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i ->
        if i = 0 then 5.
        else if i <= 20 then 1.5 /. float_of_int i
        else 0.01 /. (1. +. (float_of_int i /. 40.)))
  in
  let early =
    Array.map
      (fun c -> some (c *. (1. +. (drift *. Stats.Rng.gaussian rng))))
      truth
  in
  let sample k =
    let xs = Stats.Sampling.monte_carlo rng ~k ~r in
    let g = Polybasis.Basis.design_matrix basis xs in
    let f =
      Array.init k (fun i ->
          Linalg.Vec.dot (Linalg.Mat.row g i) truth
          +. (noise *. Stats.Rng.gaussian rng))
    in
    (g, f)
  in
  let g, f = sample k in
  let g_test, f_test = sample 400 in
  { basis; truth; early; g; f; g_test; f_test }

let test_error synth coeffs =
  Linalg.Vec.rel_error (Linalg.Mat.gemv synth.g_test coeffs) synth.f_test

(* ------------------------------------------------------------------ *)
(* Prior *)

let test_prior_zero_mean_eq16 () =
  (* eq. 16: sigma_m = |alpha_E,m|, so weight = 1/alpha^2; means all 0 *)
  let p = Bmf.Prior.zero_mean [| some 2.; some (-0.5); some 1. |] in
  check_float "w0" 0.25 p.weights.(0);
  check_float "w1" 4. p.weights.(1);
  check_float "w2" 1. p.weights.(2);
  Alcotest.(check (array (float 1e-12))) "means" [| 0.; 0.; 0. |] p.means;
  check_bool "informed" true (Array.for_all Fun.id p.informed)

let test_prior_nonzero_mean_eq19 () =
  (* eq. 19: mean = alpha_E,m, variance scale = alpha_E,m^2 *)
  let p = Bmf.Prior.nonzero_mean [| some 2.; some (-0.5) |] in
  check_float "mean0" 2. p.means.(0);
  check_float "mean1" (-0.5) p.means.(1);
  check_float "w0" 0.25 p.weights.(0);
  check_float "w1" 4. p.weights.(1)

let test_prior_missing_flat () =
  (* missing prior: far smaller weight than informed ones, zero mean *)
  let p = Bmf.Prior.nonzero_mean [| some 1.; None; some 2. |] in
  check_bool "uninformed flag" true (not p.informed.(1));
  check_float "uninformed mean" 0. p.means.(1);
  check_bool "much flatter" true (p.weights.(1) < 1e-3 *. p.weights.(0))

let test_prior_zero_coefficient_floored () =
  (* an exactly-zero early coefficient must give a finite (huge) weight *)
  let p = Bmf.Prior.zero_mean [| some 1.; some 0. |] in
  check_bool "finite" true (Float.is_finite p.weights.(1));
  check_bool "very tight" true (p.weights.(1) > 1e6 *. p.weights.(0))

let test_prior_empty_rejected () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Prior: empty coefficient array") (fun () ->
      ignore (Bmf.Prior.zero_mean [||]))

let test_prior_log_pdf_peaks_at_mean () =
  let p = Bmf.Prior.nonzero_mean [| some 1.; some 2. |] in
  let at_mean = Bmf.Prior.log_pdf p ~hyper:0.5 [| 1.; 2. |] in
  let off = Bmf.Prior.log_pdf p ~hyper:0.5 [| 1.5; 2. |] in
  check_bool "peak at mean" true (at_mean > off)

let test_prior_kind_names () =
  Alcotest.(check string) "zm" "BMF-ZM" (Bmf.Prior.kind_name Bmf.Prior.Zero_mean);
  Alcotest.(check string) "nzm" "BMF-NZM"
    (Bmf.Prior.kind_name Bmf.Prior.Nonzero_mean)

(* ------------------------------------------------------------------ *)
(* Map_solver *)

let test_solver_fast_equals_direct () =
  let s = make_synth () in
  List.iter
    (fun kind ->
      let prior = Bmf.Prior.make kind s.early in
      List.iter
        (fun hyper ->
          let fast =
            Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:s.g
              ~f:s.f ~prior ~hyper ()
          in
          let direct =
            Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Direct_cholesky ~g:s.g
              ~f:s.f ~prior ~hyper ()
          in
          check_bool
            (Printf.sprintf "agree %s h=%g" (Bmf.Prior.kind_name kind) hyper)
            true
            (Linalg.Vec.dist2 fast direct /. Linalg.Vec.nrm2 direct < 1e-8))
        [ 1e-6; 1e-2; 1.; 1e3 ])
    [ Bmf.Prior.Zero_mean; Bmf.Prior.Nonzero_mean ]

let test_solver_normal_equations () =
  (* the MAP solution satisfies (G^T G + t W)(alpha - mu) = G^T (f - G mu) *)
  let s = make_synth ~k:40 ~r:60 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let hyper = 0.05 in
  let alpha =
    Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:s.g ~f:s.f
      ~prior ~hyper ()
  in
  let beta = Linalg.Vec.sub alpha prior.means in
  let lhs =
    Linalg.Vec.add
      (Linalg.Mat.gemv_t s.g (Linalg.Mat.gemv s.g beta))
      (Array.mapi (fun i b -> hyper *. prior.weights.(i) *. b) beta)
  in
  let resid = Linalg.Vec.sub s.f (Linalg.Mat.gemv s.g prior.means) in
  let rhs = Linalg.Mat.gemv_t s.g resid in
  check_bool "normal equations" true
    (Linalg.Vec.dist2 lhs rhs /. Linalg.Vec.nrm2 rhs < 1e-8)

let test_solver_strong_prior_pins_to_mean () =
  let s = make_synth () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let alpha =
    Bmf.Map_solver.solve ~g:s.g ~f:s.f ~prior ~hyper:1e9 ()
  in
  check_bool "close to prior mean" true
    (Linalg.Vec.dist2 alpha prior.means /. Linalg.Vec.nrm2 prior.means < 1e-3)

let test_solver_weak_prior_fits_data () =
  (* with an overdetermined system and a vanishing prior, MAP ~ LS *)
  let s = make_synth ~k:400 ~r:50 ~noise:0. () in
  let prior = Bmf.Prior.zero_mean s.early in
  let alpha = Bmf.Map_solver.solve ~g:s.g ~f:s.f ~prior ~hyper:1e-12 () in
  check_bool "matches truth" true
    (Linalg.Vec.dist2 alpha s.truth /. Linalg.Vec.nrm2 s.truth < 1e-5)

let test_solver_validation () =
  let s = make_synth ~k:10 ~r:5 () in
  let prior = Bmf.Prior.zero_mean s.early in
  Alcotest.check_raises "hyper"
    (Invalid_argument "Map_solver: hyper must be positive and finite")
    (fun () -> ignore (Bmf.Map_solver.solve ~g:s.g ~f:s.f ~prior ~hyper:0. ()));
  Alcotest.check_raises "length"
    (Invalid_argument "Map_solver: sample count mismatch") (fun () ->
      ignore
        (Bmf.Map_solver.solve ~g:s.g ~f:(Array.make 3 0.) ~prior ~hyper:1. ()))

let test_solver_default_dispatch () =
  (* underdetermined picks the fast path, overdetermined the direct one;
     both give the same answer either way *)
  let s = make_synth ~k:30 ~r:60 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let auto = Bmf.Map_solver.solve ~g:s.g ~f:s.f ~prior ~hyper:0.1 () in
  let fast =
    Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:s.g ~f:s.f
      ~prior ~hyper:0.1 ()
  in
  check_bool "auto = fast when k < m" true
    (Linalg.Vec.approx_equal ~tol:1e-10 auto fast)

(* ------------------------------------------------------------------ *)
(* Hyper *)

let test_hyper_grid_positive_sorted () =
  let s = make_synth () in
  let prior = Bmf.Prior.zero_mean s.early in
  let grid = Bmf.Hyper.auto_grid ~g:s.g ~f:s.f ~prior () in
  check_bool "nonempty" true (grid <> []);
  check_bool "positive" true (List.for_all (fun t -> t > 0.) grid);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a < b && sorted rest
    | _ -> true
  in
  check_bool "ascending" true (sorted grid)

let test_hyper_cv_matches_naive () =
  (* shared-work sweep must equal a per-fold direct evaluation *)
  let s = make_synth ~k:32 ~r:40 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let candidates = [ 1e-3; 1e-1; 10. ] in
  let fast =
    Bmf.Hyper.cv_errors ~folds:4 ~g:s.g ~f:s.f ~prior ~candidates ()
  in
  let naive =
    Bmf.Hyper.cv_errors ~solver:Bmf.Map_solver.Direct_cholesky ~folds:4 ~g:s.g
      ~f:s.f ~prior ~candidates ()
  in
  List.iter2
    (fun (t1, e1) (t2, e2) ->
      check_float "candidate" t1 t2;
      Alcotest.(check (float 1e-6)) "cv error" e2 e1)
    fast naive

let test_hyper_select_returns_minimum () =
  let s = make_synth () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let candidates = [ 1e-4; 1e-2; 1.; 100. ] in
  let scored = Bmf.Hyper.cv_errors ~folds:4 ~g:s.g ~f:s.f ~prior ~candidates () in
  let best_t, best_e = Bmf.Hyper.select ~folds:4 ~candidates ~g:s.g ~f:s.f ~prior () in
  List.iter (fun (_, e) -> check_bool "minimal" true (best_e <= e +. 1e-12)) scored;
  check_bool "from candidates" true (List.mem best_t candidates)

let test_hyper_validation () =
  let s = make_synth ~k:10 ~r:5 () in
  let prior = Bmf.Prior.zero_mean s.early in
  Alcotest.check_raises "folds"
    (Invalid_argument "Hyper.cv_errors: need at least 2 folds") (fun () ->
      ignore
        (Bmf.Hyper.cv_errors ~folds:1 ~g:s.g ~f:s.f ~prior ~candidates:[ 1. ] ()));
  Alcotest.check_raises "candidates"
    (Invalid_argument "Hyper.cv_errors: no candidates") (fun () ->
      ignore (Bmf.Hyper.cv_errors ~folds:2 ~g:s.g ~f:s.f ~prior ~candidates:[] ()));
  Alcotest.check_raises "negative candidate"
    (Invalid_argument "Hyper.cv_errors: candidates must be positive")
    (fun () ->
      ignore
        (Bmf.Hyper.cv_errors ~folds:2 ~g:s.g ~f:s.f ~prior ~candidates:[ -1. ] ()))

(* Regression: a validation group of (near-)zero responses used to blow
   the relative-error denominator up to inf/NaN for every candidate; the
   guard falls back to the absolute error and keeps the sweep finite. *)
let test_hyper_cv_zero_response_finite () =
  let s = make_synth ~k:24 ~r:8 () in
  let prior = Bmf.Prior.zero_mean s.early in
  let candidates = [ 1e-3; 1.; 100. ] in
  List.iter
    (fun f ->
      let scored = Bmf.Hyper.cv_errors ~folds:4 ~g:s.g ~f ~prior ~candidates () in
      List.iter
        (fun (_, e) ->
          check_bool "finite cv error" true (Float.is_finite e);
          check_bool "non-negative" true (e >= 0.))
        scored;
      let hyper, err = Bmf.Hyper.select ~folds:4 ~candidates ~g:s.g ~f ~prior () in
      check_bool "selected from grid" true (List.mem hyper candidates);
      check_bool "selected error finite" true (Float.is_finite err))
    [
      Array.make (Array.length s.f) 0.;
      (* exactly zero responses *)
      Array.make (Array.length s.f) 1e-200;
      (* tiny but nonzero: |f_v| far below the 1e-12 floor *)
    ]

let test_evidence_matches_dense_gaussian () =
  (* small problem: compare against an explicit multivariate-normal
     log-density with covariance noise I + scale G W^-1 G^T *)
  let s = make_synth ~k:8 ~r:12 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let noise = 0.3 and scale = 0.7 in
  let got = Bmf.Hyper.log_evidence ~scale ~g:s.g ~f:s.f ~prior ~noise () in
  (* dense reference *)
  let w_inv = Array.map (fun w -> 1. /. w) prior.Bmf.Prior.weights in
  let b = Linalg.Mat.weighted_outer_gram s.g w_inv in
  let c = Linalg.Mat.add_diag (Linalg.Mat.scale scale b) (Array.make 8 noise) in
  let r = Linalg.Vec.sub s.f (Linalg.Mat.gemv s.g prior.Bmf.Prior.means) in
  let chol = Linalg.Cholesky.factorize c in
  let expected =
    -0.5
    *. (Linalg.Vec.dot r (Linalg.Cholesky.solve chol r)
       +. Linalg.Cholesky.log_det chol
       +. (8. *. log (2. *. Float.pi)))
  in
  Alcotest.(check (float 1e-9)) "closed form" expected got

let test_evidence_peaks_near_true_noise () =
  (* draw data exactly from the zero-mean prior's generative model and
     check the evidence prefers the true noise variance over values two
     orders off *)
  let rng = Stats.Rng.create 88 in
  let r = 30 and k = 40 in
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let early = Array.init m (fun i -> Some (1. /. float_of_int (i + 1))) in
  let prior = Bmf.Prior.zero_mean early in
  (* alpha_m ~ N(0, 1/w_m) *)
  let alpha =
    Array.mapi
      (fun i w -> Stats.Rng.gaussian rng /. sqrt w +. (0. *. float_of_int i))
      prior.Bmf.Prior.weights
  in
  let true_noise = 0.05 in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) alpha
        +. (sqrt true_noise *. Stats.Rng.gaussian rng))
  in
  let le noise = Bmf.Hyper.log_evidence ~g ~f ~prior ~noise () in
  check_bool "beats 100x smaller" true (le true_noise > le (true_noise /. 100.));
  check_bool "beats 100x larger" true (le true_noise > le (true_noise *. 100.))

let test_select_evidence_usable_hyper () =
  let s = make_synth ~k:50 ~r:100 () in
  List.iter
    (fun kind ->
      let prior = Bmf.Prior.make kind s.early in
      let hyper, le = Bmf.Hyper.select_evidence ~g:s.g ~f:s.f ~prior () in
      check_bool "finite" true (Float.is_finite le && hyper > 0.);
      let coeffs = Bmf.Map_solver.solve ~g:s.g ~f:s.f ~prior ~hyper () in
      let err = test_error s coeffs in
      (* within striking distance of the CV-selected fit *)
      let h_cv, _ = Bmf.Hyper.select ~g:s.g ~f:s.f ~prior () in
      let err_cv = test_error s (Bmf.Map_solver.solve ~g:s.g ~f:s.f ~prior ~hyper:h_cv ()) in
      check_bool
        (Printf.sprintf "%s: evidence %.4f vs cv %.4f"
           (Bmf.Prior.kind_name kind) err err_cv)
        true
        (err < 3. *. Float.max err_cv 0.001))
    [ Bmf.Prior.Zero_mean; Bmf.Prior.Nonzero_mean ]

let test_evidence_validation () =
  let s = make_synth ~k:10 ~r:5 () in
  let prior = Bmf.Prior.zero_mean s.early in
  Alcotest.check_raises "noise"
    (Invalid_argument "Hyper.log_evidence: noise must be positive") (fun () ->
      ignore (Bmf.Hyper.log_evidence ~g:s.g ~f:s.f ~prior ~noise:0. ()));
  Alcotest.check_raises "scale"
    (Invalid_argument "Hyper.log_evidence: scale must be positive") (fun () ->
      ignore (Bmf.Hyper.log_evidence ~scale:(-1.) ~g:s.g ~f:s.f ~prior ~noise:1. ()))

(* ------------------------------------------------------------------ *)
(* Fusion (Algorithm 1) *)

let test_fusion_beats_omp_at_small_k () =
  let s = make_synth ~k:50 ~r:200 () in
  let ps = Bmf.Fusion.fit_design ~rng ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_ps in
  let omp =
    Regression.Omp.fit_design ~rng ~g:s.g ~f:s.f
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 16 })
  in
  let e_ps = test_error s ps.coeffs and e_omp = test_error s omp.coeffs in
  check_bool
    (Printf.sprintf "bmf (%.4f) beats omp (%.4f)" e_ps e_omp)
    true (e_ps < e_omp)

let test_fusion_ps_picks_better_prior () =
  let s = make_synth () in
  let zm = Bmf.Fusion.fit_design ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_zm in
  let nzm = Bmf.Fusion.fit_design ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_nzm in
  let ps = Bmf.Fusion.fit_design ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_ps in
  check_bool "cv error is min" true
    (ps.cv_error <= zm.cv_error +. 1e-12 && ps.cv_error <= nzm.cv_error +. 1e-12);
  let expected_kind =
    if zm.cv_error <= nzm.cv_error then Bmf.Prior.Zero_mean
    else Bmf.Prior.Nonzero_mean
  in
  check_bool "kind matches winner" true (ps.prior_kind = expected_kind)

let test_fusion_fixed_methods_report_kind () =
  let s = make_synth ~k:30 ~r:40 () in
  let zm = Bmf.Fusion.fit_design ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_zm in
  check_bool "zm kind" true (zm.prior_kind = Bmf.Prior.Zero_mean);
  let nzm = Bmf.Fusion.fit_design ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_nzm in
  check_bool "nzm kind" true (nzm.prior_kind = Bmf.Prior.Nonzero_mean)

let test_fusion_deterministic_given_rng () =
  let s = make_synth ~k:30 ~r:40 () in
  let run () =
    let rng = Stats.Rng.create 5 in
    (Bmf.Fusion.fit_design ~rng ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_ps)
      .coeffs
  in
  check_bool "reproducible" true (Linalg.Vec.approx_equal (run ()) (run ()))

let test_fusion_validation () =
  let s = make_synth ~k:10 ~r:5 () in
  Alcotest.check_raises "early length"
    (Invalid_argument "Fusion.fit_design: early coefficient length mismatch")
    (fun () ->
      ignore
        (Bmf.Fusion.fit_design ~early:[| Some 1. |] ~g:s.g ~f:s.f
           Bmf.Fusion.Bmf_ps))

let test_fusion_model_wrapper () =
  let s = make_synth ~k:40 ~r:30 () in
  let xs = Stats.Sampling.monte_carlo rng ~k:40 ~r:30 in
  let f = Array.init 40 (fun i ->
      Polybasis.Basis.predict s.basis ~coeffs:s.truth (Linalg.Mat.row xs i))
  in
  let model, fitted =
    Bmf.Fusion.fit ~early:s.early ~basis:s.basis ~xs ~f Bmf.Fusion.Bmf_nzm
  in
  check_int "model size" (Polybasis.Basis.size s.basis)
    (Regression.Model.num_terms model);
  check_bool "coeffs consistent" true
    (Linalg.Vec.approx_equal (Regression.Model.coeffs model) fitted.coeffs)

let test_fusion_method_names () =
  Alcotest.(check string) "zm" "BMF-ZM" (Bmf.Fusion.method_name Bmf.Fusion.Bmf_zm);
  Alcotest.(check string) "nzm" "BMF-NZM"
    (Bmf.Fusion.method_name Bmf.Fusion.Bmf_nzm);
  Alcotest.(check string) "ps" "BMF-PS" (Bmf.Fusion.method_name Bmf.Fusion.Bmf_ps)

let test_fusion_missing_priors_still_work () =
  let s = make_synth ~k:60 ~r:100 () in
  (* blank a third of the priors *)
  let early =
    Array.mapi (fun i e -> if i mod 3 = 1 then None else e) s.early
  in
  let ps = Bmf.Fusion.fit_design ~early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_ps in
  let full = Bmf.Fusion.fit_design ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_ps in
  let e_missing = test_error s ps.coeffs and e_full = test_error s full.coeffs in
  check_bool "still fits" true (e_missing < 0.2);
  check_bool "full prior at least as good" true (e_full <= e_missing +. 0.02)


let test_fusion_chain_improves_over_stale_prior () =
  (* stage 2 truth drifts from stage 1; chaining through stage-2 data
     must beat using the stage-1 prior directly on stage 3 *)
  let s = make_synth ~k:60 ~r:80 () in
  (* stage 3 truth: stage truth scaled systematically *)
  let truth3 = Array.map (fun c -> 0.93 *. c) s.truth in
  let rng3 = Stats.Rng.create 77 in
  let sample3 k =
    let xs = Stats.Sampling.monte_carlo rng3 ~k ~r:80 in
    let g = Polybasis.Basis.design_matrix s.basis xs in
    let f =
      Array.init k (fun i ->
          Linalg.Vec.dot (Linalg.Mat.row g i) truth3
          +. (0.01 *. Stats.Rng.gaussian rng3))
    in
    (g, f)
  in
  let g3, f3 = sample3 25 in
  let g3t, f3t = sample3 300 in
  let fits =
    Bmf.Fusion.chain ~early:s.early [ (s.g, s.f); (g3, f3) ] Bmf.Fusion.Bmf_ps
  in
  check_int "two fits" 2 (List.length fits);
  let final = List.nth fits 1 in
  let stale = List.nth fits 0 in
  let err c = Linalg.Vec.rel_error (Linalg.Mat.gemv g3t c) f3t in
  check_bool "chained beats stale" true
    (err final.Bmf.Fusion.coeffs < err stale.Bmf.Fusion.coeffs)

let test_fusion_chain_single_stage_matches_fit () =
  let s = make_synth ~k:30 ~r:40 () in
  let rng1 = Stats.Rng.create 5 and rng2 = Stats.Rng.create 5 in
  let chained =
    List.hd (Bmf.Fusion.chain ~rng:rng1 ~early:s.early [ (s.g, s.f) ] Bmf.Fusion.Bmf_ps)
  in
  let direct = Bmf.Fusion.fit_design ~rng:rng2 ~early:s.early ~g:s.g ~f:s.f Bmf.Fusion.Bmf_ps in
  check_bool "identical" true
    (Linalg.Vec.approx_equal chained.Bmf.Fusion.coeffs direct.Bmf.Fusion.coeffs)

let test_fusion_chain_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Fusion.chain: no stages")
    (fun () ->
      ignore (Bmf.Fusion.chain ~early:[| Some 1. |] [] Bmf.Fusion.Bmf_ps))

(* ------------------------------------------------------------------ *)
(* Prior_mapping *)

let test_mapping_indexing () =
  let pm = Bmf.Prior_mapping.create [| 2; 1; 3 |] in
  check_int "early dim" 3 (Bmf.Prior_mapping.early_dim pm);
  check_int "late dim" 6 (Bmf.Prior_mapping.late_dim pm);
  check_int "fingers" 3 (Bmf.Prior_mapping.fingers pm 2);
  check_int "var (0,1)" 1 (Bmf.Prior_mapping.late_var pm ~sch:0 ~finger:1);
  check_int "var (2,0)" 3 (Bmf.Prior_mapping.late_var pm ~sch:2 ~finger:0);
  Alcotest.(check (pair int int)) "inverse" (2, 2)
    (Bmf.Prior_mapping.schematic_of_late pm 5);
  (* round trip over every late variable *)
  for v = 0 to 5 do
    let sch, fg = Bmf.Prior_mapping.schematic_of_late pm v in
    check_int "roundtrip" v (Bmf.Prior_mapping.late_var pm ~sch ~finger:fg)
  done

let test_mapping_validation () =
  Alcotest.check_raises "zero fingers"
    (Invalid_argument "Prior_mapping.create: fingers.(1) = 0 < 1") (fun () ->
      ignore (Bmf.Prior_mapping.create [| 1; 0 |]));
  let pm = Bmf.Prior_mapping.create [| 2 |] in
  Alcotest.check_raises "finger range"
    (Invalid_argument "Prior_mapping.late_var: finger out of range") (fun () ->
      ignore (Bmf.Prior_mapping.late_var pm ~sch:0 ~finger:2))

let test_mapping_constant_and_linear_terms () =
  let pm = Bmf.Prior_mapping.create [| 2; 3 |] in
  Alcotest.(check int) "constant group" 1
    (List.length (Bmf.Prior_mapping.map_term pm Polybasis.Multi_index.constant));
  Alcotest.(check int) "x0 group" 2
    (List.length (Bmf.Prior_mapping.map_term pm (Polybasis.Multi_index.linear 0)));
  Alcotest.(check int) "x1 group" 3
    (List.length (Bmf.Prior_mapping.map_term pm (Polybasis.Multi_index.linear 1)))

let test_mapping_product_term_group () =
  (* T_m for a product term is the product of finger counts *)
  let pm = Bmf.Prior_mapping.create [| 2; 3 |] in
  let t = Polybasis.Multi_index.of_pairs [ (0, 1); (1, 1) ] in
  Alcotest.(check int) "product group" 6
    (List.length (Bmf.Prior_mapping.map_term pm t))

let test_mapping_eq49_variance_conservation () =
  (* beta = alpha / sqrt(T): sum of beta^2 over each group = alpha^2 *)
  let pm = Bmf.Prior_mapping.create [| 2; 1; 4 |] in
  let eb = Polybasis.Basis.linear 3 in
  let ec = [| 1.0; 2.0; -3.0; 0.5 |] in
  let lb, lc = Bmf.Prior_mapping.map_model pm ~early_basis:eb ~early_coeffs:ec in
  check_int "late size 1+2+1+4" 8 (Polybasis.Basis.size lb);
  (* group of x0 (2 fingers): positions 1, 2 *)
  (match (lc.(1), lc.(2)) with
  | Some b1, Some b2 ->
      Alcotest.(check (float 1e-12)) "sum beta^2 = alpha^2" 4.
        ((b1 *. b1) +. (b2 *. b2));
      check_float "equal split" b1 b2
  | _ -> Alcotest.fail "expected mapped priors");
  (* constant maps unchanged *)
  (match lc.(0) with
  | Some b -> check_float "constant" 1. b
  | None -> Alcotest.fail "constant prior missing")

let test_mapping_identity_is_noop () =
  let pm = Bmf.Prior_mapping.identity 4 in
  let eb = Polybasis.Basis.linear 4 in
  let ec = [| 1.; 2.; 3.; 4.; 5. |] in
  let lb, lc = Bmf.Prior_mapping.map_model pm ~early_basis:eb ~early_coeffs:ec in
  check_int "same size" 5 (Polybasis.Basis.size lb);
  Array.iteri
    (fun i c ->
      match c with
      | Some v -> check_float "unchanged" ec.(i) v
      | None -> Alcotest.fail "unexpected missing")
    lc

let test_mapping_append_missing () =
  let pm = Bmf.Prior_mapping.create [| 2 |] in
  let eb = Polybasis.Basis.linear 1 in
  let mapped = Bmf.Prior_mapping.map_model pm ~early_basis:eb ~early_coeffs:[| 1.; 2. |] in
  let lb, lc =
    Bmf.Prior_mapping.append_missing mapped
      [ Polybasis.Multi_index.linear 2; Polybasis.Multi_index.linear 3 ]
  in
  check_int "extended size" 5 (Polybasis.Basis.size lb);
  check_int "extended dim" 4 (Polybasis.Basis.dim lb);
  check_bool "tail missing" true (lc.(3) = None && lc.(4) = None);
  check_bool "head informed" true (lc.(0) <> None)

let test_mapping_recovers_finger_physics () =
  (* Build a late-stage truth that genuinely splits early coefficients
     across fingers; the mapped prior mean should be close to it. *)
  let r = 20 and w = 2 in
  let pm = Bmf.Prior_mapping.create (Array.make r w) in
  let eb = Polybasis.Basis.linear r in
  let ec = Array.init (r + 1) (fun i -> if i = 0 then 2. else 1. /. float_of_int i) in
  let _, mapped = Bmf.Prior_mapping.map_model pm ~early_basis:eb ~early_coeffs:ec in
  (* physical late truth: each early linear coefficient splits as
     alpha/sqrt(w) per finger *)
  Array.iteri
    (fun i c ->
      match c with
      | Some v when i > 0 ->
          let sch, _ = Bmf.Prior_mapping.schematic_of_late pm (i - 1) in
          Alcotest.(check (float 1e-12))
            "split matches physics"
            (ec.(sch + 1) /. sqrt (float_of_int w))
            v
      | _ -> ())
    mapped

(* ------------------------------------------------------------------ *)
(* Posterior *)

let test_posterior_mean_matches_map () =
  let s = make_synth ~k:50 ~r:20 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let hyper = 0.1 in
  let map_sol =
    Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Direct_cholesky ~g:s.g ~f:s.f
      ~prior ~hyper ()
  in
  let post = Bmf.Posterior.compute ~g:s.g ~f:s.f ~prior ~hyper () in
  check_bool "mean = MAP" true
    (Linalg.Vec.approx_equal ~tol:1e-9 post.mean map_sol)

let test_posterior_covariance_spd_and_shrinks () =
  let s = make_synth ~k:60 ~r:15 ~noise:0.05 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let post =
    Bmf.Posterior.compute ~sigma0_sq:0.0025 ~g:s.g ~f:s.f ~prior ~hyper:0.1 ()
  in
  check_bool "symmetric" true (Linalg.Mat.is_symmetric ~tol:1e-7 post.covariance);
  let stds = Bmf.Posterior.marginal_std post in
  check_bool "positive stds" true (Array.for_all (fun s -> s > 0.) stds);
  (* more data shrinks the posterior *)
  let s2 = make_synth ~k:300 ~r:15 ~noise:0.05 () in
  let post2 =
    Bmf.Posterior.compute ~sigma0_sq:0.0025 ~g:s2.g ~f:s2.f
      ~prior:(Bmf.Prior.nonzero_mean s2.early) ~hyper:0.1 ()
  in
  let stds2 = Bmf.Posterior.marginal_std post2 in
  check_bool "smaller with more data" true
    (Linalg.Vec.mean stds2 < Linalg.Vec.mean stds)

let test_posterior_credible_interval () =
  let s = make_synth ~k:80 ~r:10 ~noise:0.02 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let post = Bmf.Posterior.compute ~g:s.g ~f:s.f ~prior ~hyper:0.1 () in
  let lo, hi = Bmf.Posterior.credible_interval post ~index:0 ~level:0.95 in
  check_bool "contains mean" true (lo < post.mean.(0) && post.mean.(0) < hi);
  let lo99, hi99 = Bmf.Posterior.credible_interval post ~index:0 ~level:0.99 in
  check_bool "wider at higher level" true (lo99 < lo && hi99 > hi);
  Alcotest.check_raises "level"
    (Invalid_argument "Posterior.credible_interval: level outside (0, 1)")
    (fun () -> ignore (Bmf.Posterior.credible_interval post ~index:0 ~level:1.5))

let test_posterior_samples_match_moments () =
  let s = make_synth ~k:60 ~r:8 ~noise:0.05 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let post = Bmf.Posterior.compute ~g:s.g ~f:s.f ~prior ~hyper:0.1 () in
  let rng = Stats.Rng.create 8 in
  let n = 4000 in
  let idx = 1 in
  let draws = Array.init n (fun _ -> (Bmf.Posterior.sample rng post).(idx)) in
  let std_expected = (Bmf.Posterior.marginal_std post).(idx) in
  check_bool "sample mean" true
    (Float.abs (Stats.Describe.mean draws -. post.mean.(idx))
    < 5. *. std_expected /. sqrt (float_of_int n));
  check_bool "sample std" true
    (Float.abs (Stats.Describe.std draws -. std_expected) /. std_expected < 0.1)

let test_posterior_predict_variance_floor () =
  (* predictive variance is at least the observation noise *)
  let s = make_synth ~k:60 ~r:8 () in
  let prior = Bmf.Prior.nonzero_mean s.early in
  let sigma0_sq = 0.04 in
  let post = Bmf.Posterior.compute ~sigma0_sq ~g:s.g ~f:s.f ~prior ~hyper:0.1 () in
  let row = Polybasis.Basis.eval_row s.basis (Stats.Rng.gaussian_vec rng 8) in
  let _, std = Bmf.Posterior.predict post row in
  check_bool "std >= noise" true (std >= sqrt sigma0_sq -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"fast-equals-direct-random-problems" ~count:15
      (make Gen.(pair (int_range 0 10000) (int_range 5 25)))
      (fun (seed, k) ->
        let rng = Stats.Rng.create seed in
        let m = 2 * k in
        let g = Linalg.Mat.init k m (fun _ _ -> Stats.Rng.gaussian rng) in
        let f = Stats.Rng.gaussian_vec rng k in
        let early =
          Array.init m (fun _ -> Some (0.1 +. Float.abs (Stats.Rng.gaussian rng)))
        in
        let prior = Bmf.Prior.nonzero_mean early in
        let fast =
          Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g ~f
            ~prior ~hyper:0.3 ()
        in
        let direct =
          Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Direct_cholesky ~g ~f
            ~prior ~hyper:0.3 ()
        in
        Linalg.Vec.dist2 fast direct
        < 1e-7 *. Float.max 1. (Linalg.Vec.nrm2 direct));
    Test.make ~name:"map-interpolates-mean-and-data" ~count:15
      (make (Gen.int_range 0 10000))
      (fun seed ->
        (* as hyper grows the solution moves monotonically toward the
           prior mean (in distance) *)
        let rng = Stats.Rng.create seed in
        let k = 12 and m = 30 in
        let g = Linalg.Mat.init k m (fun _ _ -> Stats.Rng.gaussian rng) in
        let f = Stats.Rng.gaussian_vec rng k in
        let early = Array.init m (fun _ -> Some (1. +. Stats.Rng.float rng)) in
        let prior = Bmf.Prior.nonzero_mean early in
        let dist hyper =
          let a = Bmf.Map_solver.solve ~g ~f ~prior ~hyper () in
          Linalg.Vec.dist2 a prior.means
        in
        dist 1e-3 >= dist 1. -. 1e-9 && dist 1. >= dist 1e3 -. 1e-9);
    Test.make ~name:"mapping-variance-conserved" ~count:30
      (make Gen.(pair (int_range 1 4) (float_range (-5.) 5.)))
      (fun (w, alpha) ->
        let pm = Bmf.Prior_mapping.create [| w |] in
        let eb = Polybasis.Basis.linear 1 in
        let _, mapped =
          Bmf.Prior_mapping.map_model pm ~early_basis:eb
            ~early_coeffs:[| 0.; alpha |]
        in
        let sum_sq =
          Array.fold_left
            (fun acc c ->
              match c with Some b -> acc +. (b *. b) | None -> acc)
            0.
            (Array.sub mapped 1 w)
        in
        Float.abs (sum_sq -. (alpha *. alpha)) < 1e-9 *. Float.max 1. (alpha *. alpha));
  ]

let () =
  Alcotest.run "bmf"
    [
      ( "prior",
        [
          Alcotest.test_case "zero mean eq16" `Quick test_prior_zero_mean_eq16;
          Alcotest.test_case "nonzero mean eq19" `Quick
            test_prior_nonzero_mean_eq19;
          Alcotest.test_case "missing flat" `Quick test_prior_missing_flat;
          Alcotest.test_case "zero floored" `Quick
            test_prior_zero_coefficient_floored;
          Alcotest.test_case "empty rejected" `Quick test_prior_empty_rejected;
          Alcotest.test_case "log pdf peak" `Quick
            test_prior_log_pdf_peaks_at_mean;
          Alcotest.test_case "kind names" `Quick test_prior_kind_names;
        ] );
      ( "map_solver",
        [
          Alcotest.test_case "fast = direct" `Quick
            test_solver_fast_equals_direct;
          Alcotest.test_case "normal equations" `Quick
            test_solver_normal_equations;
          Alcotest.test_case "strong prior" `Quick
            test_solver_strong_prior_pins_to_mean;
          Alcotest.test_case "weak prior" `Quick test_solver_weak_prior_fits_data;
          Alcotest.test_case "validation" `Quick test_solver_validation;
          Alcotest.test_case "default dispatch" `Quick
            test_solver_default_dispatch;
        ] );
      ( "hyper",
        [
          Alcotest.test_case "grid" `Quick test_hyper_grid_positive_sorted;
          Alcotest.test_case "cv matches naive" `Quick
            test_hyper_cv_matches_naive;
          Alcotest.test_case "select minimum" `Quick
            test_hyper_select_returns_minimum;
          Alcotest.test_case "validation" `Quick test_hyper_validation;
          Alcotest.test_case "zero-response folds stay finite" `Quick
            test_hyper_cv_zero_response_finite;
          Alcotest.test_case "evidence closed form" `Quick
            test_evidence_matches_dense_gaussian;
          Alcotest.test_case "evidence peak" `Quick
            test_evidence_peaks_near_true_noise;
          Alcotest.test_case "evidence select" `Quick
            test_select_evidence_usable_hyper;
          Alcotest.test_case "evidence validation" `Quick
            test_evidence_validation;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "beats OMP at small K" `Quick
            test_fusion_beats_omp_at_small_k;
          Alcotest.test_case "PS picks better prior" `Quick
            test_fusion_ps_picks_better_prior;
          Alcotest.test_case "fixed kinds" `Quick
            test_fusion_fixed_methods_report_kind;
          Alcotest.test_case "deterministic" `Quick
            test_fusion_deterministic_given_rng;
          Alcotest.test_case "validation" `Quick test_fusion_validation;
          Alcotest.test_case "model wrapper" `Quick test_fusion_model_wrapper;
          Alcotest.test_case "method names" `Quick test_fusion_method_names;
          Alcotest.test_case "missing priors" `Quick
            test_fusion_missing_priors_still_work;
          Alcotest.test_case "chain improves" `Quick
            test_fusion_chain_improves_over_stale_prior;
          Alcotest.test_case "chain single = fit" `Quick
            test_fusion_chain_single_stage_matches_fit;
          Alcotest.test_case "chain empty" `Quick test_fusion_chain_empty_rejected;
        ] );
      ( "prior_mapping",
        [
          Alcotest.test_case "indexing" `Quick test_mapping_indexing;
          Alcotest.test_case "validation" `Quick test_mapping_validation;
          Alcotest.test_case "term groups" `Quick
            test_mapping_constant_and_linear_terms;
          Alcotest.test_case "product groups" `Quick
            test_mapping_product_term_group;
          Alcotest.test_case "eq49 variance" `Quick
            test_mapping_eq49_variance_conservation;
          Alcotest.test_case "identity" `Quick test_mapping_identity_is_noop;
          Alcotest.test_case "append missing" `Quick test_mapping_append_missing;
          Alcotest.test_case "finger physics" `Quick
            test_mapping_recovers_finger_physics;
        ] );
      ( "posterior",
        [
          Alcotest.test_case "mean = MAP" `Quick test_posterior_mean_matches_map;
          Alcotest.test_case "covariance" `Quick
            test_posterior_covariance_spd_and_shrinks;
          Alcotest.test_case "credible interval" `Quick
            test_posterior_credible_interval;
          Alcotest.test_case "sampling moments" `Quick
            test_posterior_samples_match_moments;
          Alcotest.test_case "predictive floor" `Quick
            test_posterior_predict_variance_floor;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
