(* Tests for the Domains work pool: lifecycle, ordered results,
   exception propagation, chunk coverage, and the determinism bar the
   library promises — identical bits at -j 1 and -j 8 all the way up to
   serialized model artifacts. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_float_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Every test restores the automatic shared-pool sizing on the way out
   so suites that run after this one see the default configuration. *)
let with_jobs j f =
  Parallel.Pool.set_default_jobs j;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_default_jobs 0) f

(* ------------------------------------------------------------------ *)
(* Pool lifecycle and batch semantics                                 *)

let test_lifecycle () =
  let t = Parallel.Pool.create ~jobs:3 in
  check_int "lanes" 3 (Parallel.Pool.jobs t);
  let out = Parallel.Pool.run_on t [| (fun () -> 1); (fun () -> 2) |] in
  check_int "first" 1 out.(0);
  check_int "second" 2 out.(1);
  Parallel.Pool.shutdown t;
  (* idempotent *)
  Parallel.Pool.shutdown t

let test_with_pool () =
  let v =
    Parallel.Pool.with_pool ~jobs:2 (fun t ->
        Array.fold_left ( + ) 0
          (Parallel.Pool.map_on t (fun x -> x * x) (Array.init 10 Fun.id)))
  in
  check_int "sum of squares" 285 v

let test_ordered_results () =
  Parallel.Pool.with_pool ~jobs:4 @@ fun t ->
  let n = 100 in
  let out =
    Parallel.Pool.run_on t
      (Array.init n (fun i () ->
           (* stagger completion so results cannot land in submit order *)
           if i land 3 = 0 then Domain.cpu_relax ();
           i * 7))
  in
  Array.iteri (fun i v -> check_int (Printf.sprintf "slot %d" i) (i * 7) v) out

let test_empty_and_single () =
  Parallel.Pool.with_pool ~jobs:2 @@ fun t ->
  check_int "empty batch" 0 (Array.length (Parallel.Pool.run_on t [||]));
  let out = Parallel.Pool.run_on t [| (fun () -> 42) |] in
  check_int "single task" 42 out.(0)

let test_exception_propagates () =
  Parallel.Pool.with_pool ~jobs:4 @@ fun t ->
  let ran = Atomic.make 0 in
  let thunks =
    Array.init 16 (fun i () ->
        ignore (Atomic.fetch_and_add ran 1);
        if i = 5 then failwith "task five";
        if i = 11 then failwith "task eleven";
        i)
  in
  (match Parallel.Pool.run_on t thunks with
  | _ -> Alcotest.fail "expected a task failure to re-raise"
  | exception Failure msg ->
      (* lowest-index failure wins, deterministically *)
      Alcotest.(check string) "first failure" "task five" msg);
  (* the batch drained fully before re-raising *)
  check_int "all tasks ran" 16 (Atomic.get ran);
  (* the pool survives a failed batch *)
  let out = Parallel.Pool.run_on t [| (fun () -> 1); (fun () -> 2) |] in
  check_int "pool usable after failure" 3 (out.(0) + out.(1))

let test_nested_batch_runs_inline () =
  Parallel.Pool.with_pool ~jobs:2 @@ fun t ->
  let out =
    Parallel.Pool.run_on t
      (Array.init 4 (fun i () ->
           (* a batch submitted from inside a task must not deadlock *)
           Array.fold_left ( + ) 0
             (Parallel.Pool.run_on t (Array.init 3 (fun j () -> i + j)))))
  in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "nested %d" i) ((3 * i) + 3) v)
    out

let test_chunks_cover_range () =
  Parallel.Pool.with_pool ~jobs:3 @@ fun t ->
  List.iter
    (fun n ->
      let hits = Array.make n 0 in
      Parallel.Pool.chunks_on t ~grain:4 ~n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i h -> check_int (Printf.sprintf "n=%d index %d" n i) 1 h)
        hits)
    [ 1; 3; 4; 7; 64; 101 ]

(* ------------------------------------------------------------------ *)
(* Determinism: bit-equality across job counts                        *)

let sum_with_jobs data jobs =
  with_jobs jobs @@ fun () ->
  (* the library pattern: private accumulators per chunk, merged in
     index order on the caller *)
  let n = Array.length data in
  let parts =
    Parallel.Pool.map
      (fun (lo, hi) ->
        let acc = ref 0. in
        for i = lo to hi - 1 do
          acc := !acc +. data.(i)
        done;
        !acc)
      (Array.init 8 (fun c ->
           let base = n / 8 and rem = n mod 8 in
           let lo = (c * base) + Stdlib.min c rem in
           (lo, lo + base + (if c < rem then 1 else 0))))
  in
  Array.fold_left ( +. ) 0. parts

let test_ordered_reduction_bits () =
  let rng = Stats.Rng.create 7 in
  let data = Array.init 4096 (fun _ -> Stats.Rng.gaussian rng) in
  let s1 = sum_with_jobs data 1 in
  let s8 = sum_with_jobs data 8 in
  check_float_bits "chunked sum bits j1 = j8" s1 s8

let test_design_matrix_bits () =
  let rng = Stats.Rng.create 11 in
  let r = 6 in
  let basis = Polybasis.Basis.total_degree ~r ~d:2 in
  let xs = Stats.Sampling.monte_carlo rng ~k:300 ~r in
  let run jobs =
    with_jobs jobs @@ fun () -> Polybasis.Basis.design_matrix_blocked basis xs
  in
  let g1 = run 1 and g8 = run 8 in
  let k, m = Linalg.Mat.dims g1 in
  for i = 0 to k - 1 do
    for j = 0 to m - 1 do
      check_float_bits
        (Printf.sprintf "g[%d,%d]" i j)
        (Linalg.Mat.get g1 i j) (Linalg.Mat.get g8 i j)
    done
  done

(* Full pipeline: fit + artifact serialization must be byte-equal at
   -j 1 and -j 8 — the ISSUE's acceptance bar. *)
let fit_artifact_bytes jobs =
  with_jobs jobs @@ fun () ->
  let rng = Stats.Rng.create 20130613 in
  let r = 10 in
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i -> if i = 0 then 2. else 1. /. float_of_int (i + 1))
  in
  let early =
    Array.mapi
      (fun i c ->
        if i mod 7 = 3 then None
        else Some (c *. (1. +. (0.1 *. Stats.Rng.gaussian rng))))
      truth
  in
  let xs = Stats.Sampling.monte_carlo rng ~k:60 ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init 60 (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (0.01 *. Stats.Rng.gaussian rng))
  in
  let cv_rng = Stats.Rng.create 99 in
  let fitted =
    Bmf.Fusion.fit_design ~rng:cv_rng ~early ~g ~f Bmf.Fusion.Bmf_ps
  in
  let meta =
    {
      Serving.Artifact.circuit = "synthetic";
      metric = "test";
      scale = "unit";
      seed = 20130613;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis ~prior:fitted.prior
      ~hyper:fitted.hyper ~cv_error:fitted.cv_error ~g ~f ()
  in
  Serving.Artifact.to_string Serving.Artifact.Binary artifact

let test_artifact_bytes_equal () =
  let b1 = fit_artifact_bytes 1 in
  let b8 = fit_artifact_bytes 8 in
  check_int "artifact length" (String.length b1) (String.length b8);
  check_bool "artifact bytes j1 = j8" true (String.equal b1 b8)

let test_cv_errors_bits () =
  let rng = Stats.Rng.create 31 in
  let r = 8 in
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let xs = Stats.Sampling.monte_carlo rng ~k:48 ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let truth = Array.init m (fun i -> float_of_int (i + 1) /. 10.) in
  let f =
    Array.init 48 (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (0.02 *. Stats.Rng.gaussian rng))
  in
  let prior = Bmf.Prior.zero_mean (Array.make m (Some 0.5)) in
  let run jobs =
    with_jobs jobs @@ fun () ->
    Bmf.Hyper.cv_errors
      ~rng:(Stats.Rng.create 5)
      ~folds:6 ~g ~f ~prior
      ~candidates:[ 1e-4; 1e-2; 1.; 100. ]
      ()
  in
  let e1 = run 1 and e8 = run 8 in
  List.iter2
    (fun (t1, v1) (t8, v8) ->
      check_float_bits "candidate" t1 t8;
      check_float_bits "cv error bits j1 = j8" v1 v8)
    e1 e8

(* ------------------------------------------------------------------ *)
(* Shared pool configuration                                          *)

let test_default_jobs_override () =
  Parallel.Pool.set_default_jobs 3;
  check_int "override" 3 (Parallel.Pool.default_jobs ());
  Parallel.Pool.set_default_jobs 0;
  check_bool "auto is at least one" true (Parallel.Pool.default_jobs () >= 1);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool.set_default_jobs: negative job count") (fun () ->
      Parallel.Pool.set_default_jobs (-1))

let test_create_rejects_zero () =
  Alcotest.check_raises "zero jobs"
    (Invalid_argument "Pool.create: jobs must be at least 1") (fun () ->
      ignore (Parallel.Pool.create ~jobs:0))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "with_pool" `Quick test_with_pool;
          Alcotest.test_case "ordered results" `Quick test_ordered_results;
          Alcotest.test_case "empty and single" `Quick test_empty_and_single;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested batch inline" `Quick
            test_nested_batch_runs_inline;
          Alcotest.test_case "chunk coverage" `Quick test_chunks_cover_range;
          Alcotest.test_case "create rejects zero" `Quick
            test_create_rejects_zero;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ordered reduction bits" `Quick
            test_ordered_reduction_bits;
          Alcotest.test_case "design matrix bits" `Quick
            test_design_matrix_bits;
          Alcotest.test_case "cv errors bits" `Quick test_cv_errors_bits;
          Alcotest.test_case "artifact bytes j1 = j8" `Quick
            test_artifact_bytes_equal;
        ] );
      ( "config",
        [
          Alcotest.test_case "default jobs override" `Quick
            test_default_jobs_override;
        ] );
    ]
