(* Tests for the serving subsystem: artifact codecs and checksums, the
   on-disk store, the batch predictor, and exact incremental updates. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let rng = Stats.Rng.create 20130613

(* A small fitted problem with a nonzero-mean prior, the serving
   subsystem's natural input. *)
type synth = {
  basis : Polybasis.Basis.t;
  prior : Bmf.Prior.t;
  hyper : float;
  g : Linalg.Mat.t;
  f : Linalg.Vec.t;
  truth : Linalg.Vec.t;
}

let make_synth ?(k = 40) ?(r = 25) ?(noise = 0.01) () =
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i -> if i = 0 then 3. else 1. /. float_of_int (i + 1))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
      truth
  in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (noise *. Stats.Rng.gaussian rng))
  in
  let prior = Bmf.Prior.nonzero_mean early in
  let hyper, _ = Bmf.Hyper.select ~rng ~g ~f ~prior () in
  { basis; prior; hyper; g; f; truth }

let meta =
  { Serving.Artifact.circuit = "test"; metric = "m"; scale = "quick"; seed = 7 }

let artifact_of (s : synth) =
  Serving.Artifact.of_fit ~meta ~basis:s.basis ~prior:s.prior ~hyper:s.hyper
    ~g:s.g ~f:s.f ()

let queries (s : synth) n =
  let r = Polybasis.Basis.dim s.basis in
  Linalg.Mat.of_rows (List.init n (fun _ -> Stats.Rng.gaussian_vec rng r))

(* ------------------------------------------------------------------ *)
(* Artifact codecs                                                     *)

let test_of_fit_matches_solver () =
  let s = make_synth () in
  let a = artifact_of s in
  let direct =
    Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:s.g ~f:s.f
      ~prior:s.prior ~hyper:s.hyper ()
  in
  check_bool "coeffs bit-identical to Map_solver fast path" true
    (Array.for_all2 (fun a b -> Float.equal a b) a.coeffs direct)

let roundtrip format () =
  let s = make_synth () in
  let a = artifact_of s in
  let encoded = Serving.Artifact.to_string format a in
  let b =
    match Serving.Artifact.of_string encoded with
    | Ok b -> b
    | Error e -> Alcotest.failf "decode failed: %s" e
  in
  check_int "rev" a.rev b.rev;
  check_string "metric" a.meta.metric b.meta.metric;
  check_bool "hyper" true (Float.equal a.hyper b.hyper);
  check_bool "sigma0_sq" true (Float.equal a.sigma0_sq b.sigma0_sq);
  check_bool "coeffs bit-identical" true
    (Array.for_all2 Float.equal a.coeffs b.coeffs);
  (* the serving contract: a loaded artifact predicts bit-identically *)
  let q = queries s 64 in
  let pa = Serving.Predictor.predict (Serving.Predictor.of_artifact a) q in
  let pb = Serving.Predictor.predict (Serving.Predictor.of_artifact b) q in
  check_string "prediction fingerprint" (Serving.Artifact.fingerprint pa)
    (Serving.Artifact.fingerprint pb)

let test_roundtrip_json = roundtrip Serving.Artifact.Json

let test_roundtrip_binary = roundtrip Serving.Artifact.Binary

let test_binary_corruption_detected () =
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  let encoded = Serving.Artifact.to_string Serving.Artifact.Binary a in
  (* flip one payload byte past the 16-byte magic+checksum header *)
  let buf = Bytes.of_string encoded in
  let pos = 16 + (Bytes.length buf / 3) in
  Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0x40));
  (match Serving.Artifact.of_string (Bytes.to_string buf) with
  | Ok _ -> Alcotest.fail "corrupt binary artifact accepted"
  | Error _ -> ());
  (* truncation must be rejected too, not crash *)
  match
    Serving.Artifact.of_string (String.sub encoded 0 (String.length encoded / 2))
  with
  | Ok _ -> Alcotest.fail "truncated binary artifact accepted"
  | Error _ -> ()

let test_json_corruption_detected () =
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  let encoded = Serving.Artifact.to_string Serving.Artifact.Json a in
  (* alter a payload value the checksum must cover: bump the seed digit
     (a 17th-mantissa-digit flip could round back to the same double
     and so legitimately re-verify) *)
  let tag = "\"seed\":" in
  let pos = Str.search_forward (Str.regexp_string tag) encoded 0 in
  let pos = pos + String.length tag in
  let buf = Bytes.of_string encoded in
  check_string "seed digit" "7" (String.make 1 (Bytes.get buf pos));
  Bytes.set buf pos '8';
  match Serving.Artifact.of_string (Bytes.to_string buf) with
  | Ok _ -> Alcotest.fail "corrupt JSON artifact accepted"
  | Error e ->
      check_bool "mentions checksum" true
        (Str.string_match (Str.regexp ".*checksum.*") e 0)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bmf-store-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists root then rm root;
  Fun.protect ~finally:(fun () -> if Sys.file_exists root then rm root)
    (fun () -> f root)

let test_store_save_load_list () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  (match Serving.Store.load ~root meta with
  | Ok _ -> Alcotest.fail "load from empty store succeeded"
  | Error _ -> ());
  let file = Serving.Store.save ~root a in
  check_bool "file exists" true (Sys.file_exists file);
  (match Serving.Store.load ~root meta with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok b ->
      check_bool "coeffs survive" true
        (Array.for_all2 Float.equal a.coeffs b.coeffs));
  check_bool "verify ok" true
    (Result.is_ok (Serving.Store.verify ~root meta));
  (* saving as JSON replaces the stale binary copy: still one entry *)
  let file_json = Serving.Store.save ~format:Serving.Artifact.Json ~root a in
  check_bool "json file exists" true (Sys.file_exists file_json);
  check_bool "binary copy removed" false (Sys.file_exists file);
  let entries = Serving.Store.list ~root in
  check_int "one entry" 1 (List.length entries);
  check_bool "entry ok" true
    (List.for_all
       (fun (e : Serving.Store.entry) -> Result.is_ok e.status)
       entries)

let test_store_atomic_save () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  (* saves go through a private temp file + rename; none may survive,
     in either codec or when overwriting an existing entry *)
  ignore (Serving.Store.save ~root a);
  ignore (Serving.Store.save ~root a);
  ignore (Serving.Store.save ~format:Serving.Artifact.Json ~root a);
  let leftovers =
    Array.to_list (Sys.readdir root)
    |> List.filter (fun f ->
           try
             ignore (Str.search_forward (Str.regexp_string ".tmp.") f 0);
             true
           with Not_found -> false)
  in
  check_int "no temp files left behind" 0 (List.length leftovers);
  let entries = Serving.Store.list ~root in
  check_int "one entry" 1 (List.length entries);
  check_bool "entry verified" true
    (List.for_all
       (fun (e : Serving.Store.entry) -> Result.is_ok e.status)
       entries);
  (* a stray temp file from a crashed writer is invisible to the registry *)
  let oc = open_out (Filename.concat root ".orphan.tmp.1234") in
  output_string oc "partial";
  close_out oc;
  check_int "orphan temp not listed" 1 (List.length (Serving.Store.list ~root))

let test_store_detects_tampering () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  let file = Serving.Store.save ~root a in
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  let buf = Bytes.of_string content in
  Bytes.set buf (len - 5) (Char.chr (Char.code (Bytes.get buf (len - 5)) lxor 1));
  let oc = open_out_bin file in
  output_bytes oc buf;
  close_out oc;
  (match Serving.Store.verify ~root meta with
  | Ok () -> Alcotest.fail "tampered artifact verified"
  | Error _ -> ());
  match Serving.Store.list ~root with
  | [ e ] -> check_bool "listed as corrupt" true (Result.is_error e.status)
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* Predictor                                                           *)

let test_blocked_design_matrix_matches () =
  List.iter
    (fun basis ->
      let r = Polybasis.Basis.dim basis in
      let xs = Stats.Sampling.monte_carlo rng ~k:17 ~r in
      let direct = Polybasis.Basis.design_matrix basis xs in
      let blocked = Polybasis.Basis.design_matrix_blocked basis xs in
      check_int "rows" (Linalg.Mat.rows direct) (Linalg.Mat.rows blocked);
      for i = 0 to Linalg.Mat.rows direct - 1 do
        check_bool "row bit-identical" true
          (Array.for_all2 Float.equal (Linalg.Mat.row direct i)
             (Linalg.Mat.row blocked i))
      done)
    [
      Polybasis.Basis.linear 12;
      Polybasis.Basis.quadratic_diagonal 8;
      Polybasis.Basis.total_degree ~r:4 ~d:5;
    ]

let test_predictor_mean_matches_basis () =
  let s = make_synth () in
  let a = artifact_of s in
  let p = Serving.Predictor.of_artifact a in
  let q = queries s 11 in
  let means = Serving.Predictor.predict p q in
  for i = 0 to 10 do
    let expected =
      Polybasis.Basis.predict s.basis ~coeffs:a.coeffs (Linalg.Mat.row q i)
    in
    Alcotest.(check (float 1e-12)) "mean" expected means.(i)
  done

let test_predictor_variance_matches_posterior () =
  let s = make_synth ~k:30 ~r:15 () in
  let a = artifact_of s in
  let p = Serving.Predictor.of_artifact a in
  let post =
    Bmf.Posterior.compute ~sigma0_sq:a.sigma0_sq ~g:s.g ~f:s.f ~prior:s.prior
      ~hyper:s.hyper ()
  in
  let q = queries s 9 in
  for i = 0 to 8 do
    let x = Linalg.Mat.row q i in
    let row = Polybasis.Basis.eval_row s.basis x in
    let mean_post, std_post = Bmf.Posterior.predict post row in
    let mean_srv, std_srv = Serving.Predictor.predict_point_with_std p x in
    check_bool "mean close" true (Float.abs (mean_srv -. mean_post) < 1e-8);
    check_bool "std close" true
      (Float.abs (std_srv -. std_post) < 1e-6 *. Float.max 1. std_post)
  done

let test_predictor_rejects_dim_mismatch () =
  let s = make_synth ~k:20 ~r:10 () in
  let p = Serving.Predictor.of_artifact (artifact_of s) in
  let bad = Linalg.Mat.of_rows [ Stats.Rng.gaussian_vec rng 4 ] in
  let expect_message what f =
    match f () with
    | exception Invalid_argument msg ->
        let has sub =
          try
            ignore (Str.search_forward (Str.regexp_string sub) msg 0);
            true
          with Not_found -> false
        in
        check_bool (what ^ ": names the model") true (has "test/m");
        check_bool (what ^ ": expected dim") true (has "expected 10");
        check_bool (what ^ ": got dim") true (has "got 4")
    | _ -> Alcotest.failf "%s accepted a wrong-width batch" what
  in
  expect_message "predict" (fun () -> ignore (Serving.Predictor.predict p bad));
  expect_message "predict_with_std" (fun () ->
      ignore (Serving.Predictor.predict_with_std p bad))

(* ------------------------------------------------------------------ *)
(* Incremental updates                                                 *)

let test_incremental_matches_cold_refit () =
  let s = make_synth ~k:60 ~r:30 () in
  let a = artifact_of s in
  let k_new = 25 in
  let r = Polybasis.Basis.dim s.basis in
  let xs_new = Stats.Sampling.monte_carlo rng ~k:k_new ~r in
  let g_new = Polybasis.Basis.design_matrix s.basis xs_new in
  let f_new =
    Array.init k_new (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g_new i) s.truth
        +. (0.01 *. Stats.Rng.gaussian rng))
  in
  let upd = Serving.Incremental.of_artifact a in
  Serving.Incremental.add_batch upd ~xs:xs_new ~f:f_new;
  check_int "sample count" (60 + k_new) (Serving.Incremental.num_samples upd);
  let incremental = Serving.Incremental.coeffs upd in
  let m = Polybasis.Basis.size s.basis in
  let g_full =
    Linalg.Mat.init (60 + k_new) m (fun i j ->
        if i < 60 then Linalg.Mat.get s.g i j
        else Linalg.Mat.get g_new (i - 60) j)
  in
  let f_full = Array.append s.f f_new in
  let cold =
    Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:g_full
      ~f:f_full ~prior:s.prior ~hyper:s.hyper ()
  in
  let err = Linalg.Vec.norm_inf (Linalg.Vec.sub incremental cold) in
  check_bool
    (Printf.sprintf "incremental = cold refit (err %.3g)" err)
    true (err <= 1e-8)

let test_incremental_single_points () =
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  let upd = Serving.Incremental.of_artifact a in
  let r = Polybasis.Basis.dim s.basis in
  for _ = 1 to 5 do
    let x = Stats.Rng.gaussian_vec rng r in
    let value = Linalg.Vec.dot (Polybasis.Basis.eval_row s.basis x) s.truth in
    Serving.Incremental.add_point upd ~x ~value
  done;
  check_int "count" 25 (Serving.Incremental.num_samples upd);
  (* no-new-data coeffs must equal the stored fit exactly *)
  let fresh = Serving.Incremental.of_artifact a in
  let replay = Serving.Incremental.coeffs fresh in
  let err = Linalg.Vec.norm_inf (Linalg.Vec.sub replay a.coeffs) in
  check_bool "replayed coeffs match stored" true (err <= 1e-10)

let test_incremental_to_artifact_roundtrip () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:30 ~r:15 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  let r = Polybasis.Basis.dim s.basis in
  let xs_new = Stats.Sampling.monte_carlo rng ~k:10 ~r in
  let f_new =
    Array.init 10 (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs_new i))
          s.truth)
  in
  let upd = Serving.Incremental.of_artifact a in
  Serving.Incremental.add_batch upd ~xs:xs_new ~f:f_new;
  let updated = Serving.Incremental.to_artifact upd in
  check_int "revision bumped" (a.rev + 1) updated.rev;
  check_int "samples" 40 (Serving.Artifact.num_samples updated);
  ignore (Serving.Store.save ~root updated);
  match Serving.Store.load ~root meta with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok b ->
      check_int "stored revision" updated.rev b.rev;
      (* the reloaded updater continues from the updated posterior:
         coeffs replay exactly *)
      let replay = Serving.Incremental.coeffs (Serving.Incremental.of_artifact b) in
      let err =
        Linalg.Vec.norm_inf (Linalg.Vec.sub replay updated.coeffs)
      in
      check_bool "updated posterior survives store" true (err <= 1e-10)

let test_incremental_rejects_bad_rows () =
  let s = make_synth ~k:20 ~r:10 () in
  let upd = Serving.Incremental.of_artifact (artifact_of s) in
  check_bool "length mismatch rejected" true
    (try
       Serving.Incremental.add_row upd ~row:[| 1.; 2. |] ~value:0.;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Store filename collisions + legacy names                            *)

let test_store_collision_distinct_files () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  (* sanitize maps both metrics to "gain_bw": before the digest suffix
     these two keys shared one file and silently overwrote each other *)
  let meta_a = { meta with Serving.Artifact.metric = "gain+bw" } in
  let meta_b = { meta with Serving.Artifact.metric = "gain_bw" } in
  let art m =
    Serving.Artifact.of_fit ~meta:m ~basis:s.basis ~prior:s.prior
      ~hyper:s.hyper ~g:s.g ~f:s.f ()
  in
  check_bool "filenames differ" false
    (String.equal
       (Serving.Store.filename meta_a Serving.Artifact.Binary)
       (Serving.Store.filename meta_b Serving.Artifact.Binary));
  let file_a = Serving.Store.save ~root (art meta_a) in
  let file_b = Serving.Store.save ~root (art meta_b) in
  check_bool "both files live" true
    (Sys.file_exists file_a && Sys.file_exists file_b);
  check_int "two registry entries" 2 (List.length (Serving.Store.list ~root));
  (match Serving.Store.load ~root meta_a with
  | Error e -> Alcotest.failf "load gain+bw: %s" e
  | Ok a -> check_string "right artifact back" "gain+bw" a.meta.metric);
  match Serving.Store.load ~root meta_b with
  | Error e -> Alcotest.failf "load gain_bw: %s" e
  | Ok b -> check_string "right artifact back" "gain_bw" b.meta.metric

let test_store_loads_legacy_names () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  let file = Serving.Store.save ~root a in
  (* rewrite the store as an old (pre-digest) build would have left it *)
  let legacy = Filename.concat root "test__m__quick__s7.bmfa" in
  Sys.rename file legacy;
  (match Serving.Store.load ~root meta with
  | Error e -> Alcotest.failf "legacy-named artifact not loaded: %s" e
  | Ok b ->
      check_bool "coeffs survive legacy name" true
        (Array.for_all2 Float.equal a.coeffs b.coeffs));
  (* re-saving migrates: digest name in place, stale legacy copy gone *)
  let file' = Serving.Store.save ~root a in
  check_bool "digest-named file written" true (Sys.file_exists file');
  check_bool "legacy copy removed" false (Sys.file_exists legacy);
  check_int "one registry entry" 1 (List.length (Serving.Store.list ~root))

(* ------------------------------------------------------------------ *)
(* Journal codec                                                       *)

let journal_magic = "BMFJRNL1"

let sample_entries (s : synth) =
  let r = Polybasis.Basis.dim s.basis in
  let entry ~rows ~base_rev m =
    let xs = Stats.Sampling.monte_carlo rng ~k:rows ~r in
    let f =
      Array.init rows (fun i ->
          Linalg.Vec.dot
            (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs i))
            s.truth)
    in
    { Serving.Journal.meta = m; base_rev; xs; f }
  in
  [
    entry ~rows:3 ~base_rev:0 meta;
    entry ~rows:1 ~base_rev:7
      { Serving.Artifact.circuit = "gain+bw"; metric = ""; scale = "a__b";
        seed = 0 };
    entry ~rows:5 ~base_rev:2 meta;
  ]

let check_entry msg (a : Serving.Journal.entry) (b : Serving.Journal.entry) =
  check_string (msg ^ ": circuit") a.meta.circuit b.meta.circuit;
  check_string (msg ^ ": metric") a.meta.metric b.meta.metric;
  check_string (msg ^ ": scale") a.meta.scale b.meta.scale;
  check_int (msg ^ ": seed") a.meta.seed b.meta.seed;
  check_int (msg ^ ": base_rev") a.base_rev b.base_rev;
  check_int (msg ^ ": rows") (Linalg.Mat.rows a.xs) (Linalg.Mat.rows b.xs);
  check_int (msg ^ ": cols") (Linalg.Mat.cols a.xs) (Linalg.Mat.cols b.xs);
  check_bool (msg ^ ": xs bit-identical") true (Linalg.Mat.equal a.xs b.xs);
  check_bool (msg ^ ": f bit-identical") true (Array.for_all2 Float.equal a.f b.f)

let test_journal_roundtrip () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:10 ~r:6 () in
  let entries = sample_entries s in
  let j = Serving.Journal.open_ ~root () in
  List.iter (Serving.Journal.append j) entries;
  check_int "entries counted" 3 (Serving.Journal.entries j);
  Serving.Journal.close j;
  let back, err = Serving.Journal.read ~root in
  check_bool "no tail error" true (Option.is_none err);
  check_int "all entries back" 3 (List.length back);
  List.iter2 (fun a b -> check_entry "round-trip" a b) entries back;
  (* reopening resets; truncate drops entries *)
  let j = Serving.Journal.open_ ~root () in
  check_int "open_ resets" 0 (Serving.Journal.entries j);
  Serving.Journal.append j (List.hd entries);
  Serving.Journal.truncate j;
  Serving.Journal.close j;
  let back, err = Serving.Journal.read ~root in
  check_bool "truncate leaves no error" true (Option.is_none err);
  check_int "truncate drops entries" 0 (List.length back)

let test_journal_tolerates_torn_tail () =
  let s = make_synth ~k:10 ~r:6 () in
  let entries = sample_entries s in
  let e1, e2 =
    (List.nth entries 0, List.nth entries 2)
  in
  let full =
    journal_magic ^ Serving.Journal.encode_entry e1
    ^ Serving.Journal.encode_entry e2
  in
  (* intact image *)
  let back, err = Serving.Journal.decode_entries full in
  check_bool "intact: no error" true (Option.is_none err);
  check_int "intact: both entries" 2 (List.length back);
  (* header-only file *)
  let back, err = Serving.Journal.decode_entries journal_magic in
  check_bool "empty journal: no error" true (Option.is_none err);
  check_int "empty journal: no entries" 0 (List.length back);
  (* a crash mid-append can tear the tail at any byte: every prefix of
     the second entry must decode to exactly [e1] plus a tail reason *)
  let intact = String.length journal_magic + String.length (Serving.Journal.encode_entry e1) in
  for cut = intact to String.length full - 1 do
    let back, err = Serving.Journal.decode_entries (String.sub full 0 cut) in
    if cut = intact then
      check_bool "clean cut: no error" true (Option.is_none err)
    else
      check_bool
        (Printf.sprintf "cut at %d: tail reason reported" cut)
        true (Option.is_some err);
    check_int (Printf.sprintf "cut at %d: prefix survives" cut) 1
      (List.length back);
    check_entry "prefix" e1 (List.hd back)
  done;
  (* short magic *)
  let back, err = Serving.Journal.decode_entries (String.sub full 0 4) in
  check_bool "short magic: error" true (Option.is_some err);
  check_int "short magic: nothing" 0 (List.length back)

let test_journal_rejects_garbage () =
  let s = make_synth ~k:10 ~r:6 () in
  let e1 = List.hd (sample_entries s) in
  let enc = Serving.Journal.encode_entry e1 in
  let full = journal_magic ^ enc ^ enc in
  (* flip one payload byte of the second entry: its checksum must kill
     it while the first entry survives *)
  let buf = Bytes.of_string full in
  let pos = String.length journal_magic + String.length enc + 16 + 3 in
  Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0x20));
  let back, err = Serving.Journal.decode_entries (Bytes.to_string buf) in
  check_bool "checksum mismatch reported" true (Option.is_some err);
  check_int "intact prefix kept" 1 (List.length back);
  check_entry "surviving entry" e1 (List.hd back);
  (* corrupting the first entry discards everything *)
  let buf = Bytes.of_string full in
  let pos = String.length journal_magic + 16 + 3 in
  Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0x20));
  let back, err = Serving.Journal.decode_entries (Bytes.to_string buf) in
  check_bool "first-entry corruption reported" true (Option.is_some err);
  check_int "nothing decodable" 0 (List.length back);
  (* wrong magic *)
  let back, err = Serving.Journal.decode_entries ("XMFJRNL1" ^ enc) in
  check_bool "bad magic reported" true (Option.is_some err);
  check_int "bad magic yields nothing" 0 (List.length back);
  (* an implausible length prefix must not allocate or crash *)
  let huge = Bytes.of_string (journal_magic ^ enc) in
  Bytes.set_int64_le huge (String.length journal_magic) Int64.max_int;
  let back, err = Serving.Journal.decode_entries (Bytes.to_string huge) in
  check_bool "huge length reported" true (Option.is_some err);
  check_int "huge length yields nothing" 0 (List.length back)

(* ------------------------------------------------------------------ *)
(* Crash fault injection: SIGKILL at every step of the write protocol  *)

(* Run [f] in a forked child with the crashpoint armed at budget [n].
   The shared Domains pool must be inline (jobs = 1) before forking —
   worker domains do not survive fork and a child inheriting their
   mutexes would deadlock. *)
let in_crashed_child ~n f =
  Parallel.Pool.set_default_jobs 1;
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         Serving.Crashpoint.arm n;
         f ();
         Serving.Crashpoint.disarm ();
         Unix._exit 0
       with _ -> Unix._exit 2)
  | pid -> (
      match snd (Unix.waitpid [] pid) with
      | Unix.WSIGNALED s when s = Sys.sigkill -> `Killed
      | Unix.WEXITED 0 -> `Clean
      | Unix.WEXITED c -> `Other (Printf.sprintf "exit %d" c)
      | Unix.WSIGNALED s -> `Other (Printf.sprintf "signal %d" s)
      | Unix.WSTOPPED s -> `Other (Printf.sprintf "stopped %d" s))

(* Sweep n = 0, 1, 2, ... so the child is SIGKILLed before every
   distinct write/fsync/rename/unlink in [f]; after every kill the
   parent must be able to recover the store to a verified state that
   [invariant] accepts. Returns once the child runs to completion. *)
let sweep_crashpoints ~root ~invariant f =
  let budget_cap = 256 in
  let rec go n =
    if n > budget_cap then
      Alcotest.failf "crashpoint budget not exhausted after %d steps"
        budget_cap;
    match in_crashed_child ~n f with
    | `Other what -> Alcotest.failf "child died oddly (budget %d): %s" n what
    | outcome ->
        let report = Serving.Recovery.recover ~durability:`Fast ~root () in
        check_bool
          (Printf.sprintf "recovery clean after kill at step %d" n)
          true
          (Serving.Recovery.clean report);
        invariant ~n ~report;
        if outcome = `Killed then go (n + 1) else n
  in
  go 0

let test_crashpoint_env_arming () =
  Fun.protect ~finally:(fun () ->
      Unix.putenv Serving.Crashpoint.env_var "0";
      (* latch disarmed so the poisoned environment is never re-read *)
      Serving.Crashpoint.disarm ())
  @@ fun () ->
  (* a malformed value must fail loudly, not silently disable the
     harness *)
  Unix.putenv Serving.Crashpoint.env_var "banana";
  Serving.Crashpoint.reset ();
  (match Serving.Crashpoint.armed () with
  | exception Failure msg ->
      check_bool "failure names the variable" true
        (try
           ignore
             (Str.search_forward
                (Str.regexp_string Serving.Crashpoint.env_var)
                msg 0);
           true
         with Not_found -> false)
  | _ -> Alcotest.fail "malformed budget silently accepted");
  (* a well-formed value arms the process: in a fork, two steps must
     pass and the third must SIGKILL *)
  Unix.putenv Serving.Crashpoint.env_var "2";
  Parallel.Pool.set_default_jobs 1;
  flush stdout;
  flush stderr;
  (match Unix.fork () with
  | 0 ->
      Serving.Crashpoint.reset ();
      if not (Serving.Crashpoint.armed ()) then Unix._exit 3;
      Serving.Crashpoint.step ();
      Serving.Crashpoint.step ();
      Serving.Crashpoint.step () (* budget exhausted: SIGKILL here *);
      Unix._exit 4
  | pid -> (
      match snd (Unix.waitpid [] pid) with
      | Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | Unix.WEXITED 3 -> Alcotest.fail "environment did not arm the child"
      | Unix.WEXITED 4 -> Alcotest.fail "armed child outlived its budget"
      | _ -> Alcotest.fail "child died oddly"));
  (* the parent never consumed the environment: still disarmable *)
  Serving.Crashpoint.reset ();
  Serving.Crashpoint.disarm ();
  check_bool "disarm wins over the environment" false
    (Serving.Crashpoint.armed ())

let test_crash_at_every_save_step () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~durability:`Durable ~root a);
  let upd = Serving.Incremental.of_artifact a in
  let r = Polybasis.Basis.dim s.basis in
  let xs = Stats.Sampling.monte_carlo rng ~k:5 ~r in
  let f =
    Array.init 5 (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs i))
          s.truth)
  in
  Serving.Incremental.add_batch upd ~xs ~f;
  let updated = Serving.Incremental.to_artifact upd in
  let invariant ~n ~report:_ =
    match Serving.Store.load ~root meta with
    | Error e -> Alcotest.failf "store unreadable after kill at %d: %s" n e
    | Ok b ->
        check_bool
          (Printf.sprintf "kill at %d leaves base or updated rev" n)
          true
          (b.rev = a.rev || b.rev = updated.rev)
  in
  let steps =
    sweep_crashpoints ~root ~invariant (fun () ->
        ignore (Serving.Store.save ~durability:`Durable ~root updated))
  in
  (* write temp, fsync temp, rename, fsync dir — at least those *)
  check_bool "save has distinct kill points" true (steps >= 4);
  match Serving.Store.load ~root meta with
  | Error e -> Alcotest.failf "final load: %s" e
  | Ok b -> check_int "clean run leaves the update" updated.rev b.rev

let test_crash_at_every_update_protocol_step () =
  (* The full daemon-side update protocol: journal append (commit
     point) -> incremental apply -> durable artifact save -> journal
     truncate. Killed anywhere, recovery must land on the base or the
     updated artifact, and whenever the journal committed the entry the
     update must survive via replay, bit-identical to the uncrashed
     oracle. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~durability:`Durable ~root a);
  let r = Polybasis.Basis.dim s.basis in
  let xs = Stats.Sampling.monte_carlo rng ~k:4 ~r in
  let f =
    Array.init 4 (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs i))
          s.truth)
  in
  let oracle =
    let upd = Serving.Incremental.of_artifact a in
    Serving.Incremental.add_batch upd ~xs ~f;
    Serving.Incremental.to_artifact upd
  in
  let protocol () =
    let j = Serving.Journal.open_ ~root () in
    Serving.Journal.append j { Serving.Journal.meta; base_rev = a.rev; xs; f };
    let upd = Serving.Incremental.of_artifact a in
    Serving.Incremental.add_batch upd ~xs ~f;
    ignore
      (Serving.Store.save ~durability:`Durable ~root
         (Serving.Incremental.to_artifact upd));
    Serving.Journal.truncate j;
    Serving.Journal.close j
  in
  let invariant ~n ~report:_ =
    match Serving.Store.load ~root meta with
    | Error e -> Alcotest.failf "store unreadable after kill at %d: %s" n e
    | Ok b ->
        check_bool
          (Printf.sprintf "kill at %d: rev is base or updated" n)
          true
          (b.rev = a.rev || b.rev = oracle.rev);
        if b.rev = oracle.rev then
          check_bool
            (Printf.sprintf "kill at %d: replay matches oracle" n)
            true
            (Array.for_all2 Float.equal oracle.coeffs b.coeffs)
  in
  let reset () = ignore (Serving.Store.save ~root a) in
  (* sweep with a store reset before each child so every budget starts
     from the same base state *)
  let budget_cap = 256 in
  let rec go n =
    if n > budget_cap then Alcotest.fail "protocol budget not exhausted";
    reset ();
    match in_crashed_child ~n protocol with
    | `Other what -> Alcotest.failf "child died oddly (budget %d): %s" n what
    | outcome ->
        let report = Serving.Recovery.recover ~durability:`Fast ~root () in
        check_bool
          (Printf.sprintf "recovery clean after kill at step %d" n)
          true
          (Serving.Recovery.clean report);
        invariant ~n ~report;
        if outcome = `Killed then go (n + 1) else n
  in
  let steps = go 0 in
  check_bool "protocol has many kill points" true (steps >= 8);
  match Serving.Store.load ~root meta with
  | Error e -> Alcotest.failf "final load: %s" e
  | Ok b ->
      check_int "clean run leaves the update" oracle.rev b.rev;
      check_bool "clean run matches oracle" true
        (Array.for_all2 Float.equal oracle.coeffs b.coeffs)

let test_crash_random_interleavings () =
  (* Property-style: a chain of updates is applied through the
     journaled protocol and the process is killed after a random number
     of durability steps. Post-recovery the store must hold {e some}
     prefix of the chain — an artifact that verifies and is
     bit-identical to the uncrashed oracle at that revision. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:10 () in
  let a = artifact_of s in
  let r = Polybasis.Basis.dim s.basis in
  let n_updates = 4 in
  let batches =
    List.init n_updates (fun _ ->
        let rows = 1 + Stats.Rng.int rng 4 in
        let xs = Stats.Sampling.monte_carlo rng ~k:rows ~r in
        let f =
          Array.init rows (fun i ->
              Linalg.Vec.dot
                (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs i))
                s.truth)
        in
        (xs, f))
  in
  (* oracle.(v) = the artifact after the first v updates, uncrashed *)
  let oracle = Array.make (n_updates + 1) a in
  List.iteri
    (fun i (xs, f) ->
      let upd = Serving.Incremental.of_artifact oracle.(i) in
      Serving.Incremental.add_batch upd ~xs ~f;
      oracle.(i + 1) <- Serving.Incremental.to_artifact upd)
    batches;
  let chain () =
    let j = Serving.Journal.open_ ~root () in
    let cur = ref a in
    List.iter
      (fun (xs, f) ->
        Serving.Journal.append j
          { Serving.Journal.meta; base_rev = !cur.Serving.Artifact.rev; xs; f };
        let upd = Serving.Incremental.of_artifact !cur in
        Serving.Incremental.add_batch upd ~xs ~f;
        let next = Serving.Incremental.to_artifact upd in
        ignore (Serving.Store.save ~durability:`Durable ~root next);
        Serving.Journal.truncate j;
        cur := next)
      batches;
    Serving.Journal.close j
  in
  let trials = 25 in
  for trial = 1 to trials do
    ignore (Serving.Store.save ~root a);
    ignore (Serving.Recovery.recover ~durability:`Fast ~root ());
    let budget = Stats.Rng.int rng 120 in
    (match in_crashed_child ~n:budget chain with
    | `Other what ->
        Alcotest.failf "trial %d (budget %d) died oddly: %s" trial budget what
    | `Killed | `Clean -> ());
    let report = Serving.Recovery.recover ~durability:`Fast ~root () in
    check_bool
      (Printf.sprintf "trial %d: recovery clean" trial)
      true
      (Serving.Recovery.clean report);
    match Serving.Store.load ~root meta with
    | Error e -> Alcotest.failf "trial %d: store unreadable: %s" trial e
    | Ok b ->
        check_bool
          (Printf.sprintf "trial %d: rev %d is a chain prefix" trial b.rev)
          true
          (b.rev >= 0 && b.rev <= n_updates);
        check_bool
          (Printf.sprintf "trial %d: rev %d matches the oracle" trial b.rev)
          true
          (Array.for_all2 Float.equal oracle.(b.rev).coeffs b.coeffs)
  done

(* ------------------------------------------------------------------ *)
(* Online calibration telemetry                                        *)

let cal_meta =
  { Serving.Artifact.circuit = "cal"; metric = "m"; scale = "quick"; seed = 1 }

let with_calibration f =
  Obs.Metrics.enable ();
  Serving.Calibration.reset ();
  Fun.protect
    ~finally:(fun () ->
      Serving.Calibration.reset ();
      Obs.Metrics.disable ())
    f

let checkf_eps msg eps expected got = Alcotest.(check (float eps)) msg expected got

let test_calibration_known_residuals () =
  with_calibration @@ fun () ->
  (* unit-sigma, zero-mean predictions against a hand-picked residual
     stream: z = observed, so coverage at 1/2/3 sigma is countable *)
  let observed = [| 0.5; -0.9; 1.5; -1.8; 2.5; -2.9; 3.5; 0.1 |] in
  let n = Array.length observed in
  Serving.Calibration.record ~meta:cal_meta ~mean:(Array.make n 0.)
    ~std:(Array.make n 1.) ~observed;
  let st = Serving.Calibration.stats cal_meta in
  check_int "samples" n st.Serving.Calibration.samples;
  check_int "window holds all of them" n st.Serving.Calibration.window;
  checkf_eps "coverage |z|<=1 is 3/8" 1e-12 0.375
    st.Serving.Calibration.coverage1;
  checkf_eps "coverage |z|<=2 is 5/8" 1e-12 0.625
    st.Serving.Calibration.coverage2;
  checkf_eps "coverage |z|<=3 is 7/8" 1e-12 0.875
    st.Serving.Calibration.coverage3;
  let rmse_ref =
    sqrt (Array.fold_left (fun a z -> a +. (z *. z)) 0. observed /. float n)
  in
  checkf_eps "rmse" 1e-12 rmse_ref st.Serving.Calibration.rmse;
  let zmean_ref = Array.fold_left ( +. ) 0. observed /. float n in
  checkf_eps "z mean" 1e-12 zmean_ref st.Serving.Calibration.z_mean;
  (* gauges published under the model label *)
  let label = Serving.Calibration.model_label cal_meta in
  (match
     Obs.Metrics.find_gauge ~labels:[ ("model", label) ]
       "bmf_calibration_coverage_1s"
   with
  | None -> Alcotest.fail "coverage gauge not registered"
  | Some g -> checkf_eps "published coverage" 1e-12 0.375
      (Obs.Metrics.gauge_value g));
  match
    Obs.Metrics.find_gauge ~labels:[ ("model", label) ]
      "bmf_calibration_rmse"
  with
  | None -> Alcotest.fail "rmse gauge not registered"
  | Some g -> checkf_eps "published rmse" 1e-12 rmse_ref
      (Obs.Metrics.gauge_value g)

let test_calibration_window_wrap () =
  with_calibration @@ fun () ->
  Serving.Calibration.set_window 4;
  Fun.protect ~finally:(fun () -> Serving.Calibration.set_window 256)
  @@ fun () ->
  (* 4 wild misses followed by 4 perfect hits: the rolling window must
     forget the misses entirely *)
  let shoot z k =
    Serving.Calibration.record ~meta:cal_meta ~mean:(Array.make k 0.)
      ~std:(Array.make k 1.) ~observed:(Array.make k z)
  in
  shoot 10. 4;
  let st = Serving.Calibration.stats cal_meta in
  checkf_eps "all misses" 1e-12 0. st.Serving.Calibration.coverage3;
  shoot 0.5 4;
  let st = Serving.Calibration.stats cal_meta in
  check_int "total samples keep counting" 8 st.Serving.Calibration.samples;
  check_int "window is bounded" 4 st.Serving.Calibration.window;
  checkf_eps "misses rolled out" 1e-12 1. st.Serving.Calibration.coverage1;
  checkf_eps "rmse over the window only" 1e-12 0.5 st.Serving.Calibration.rmse

let test_calibration_degenerate_and_gating () =
  (* disabled metrics: recording is a strict no-op *)
  Obs.Metrics.disable ();
  Serving.Calibration.reset ();
  Serving.Calibration.record ~meta:cal_meta ~mean:[| 0. |] ~std:[| 1. |]
    ~observed:[| 0.1 |];
  let st = Serving.Calibration.stats cal_meta in
  check_int "disabled records nothing" 0 st.Serving.Calibration.samples;
  with_calibration @@ fun () ->
  (* non-positive / non-finite sigmas count as coverage misses, never
     divide-by-zero *)
  Serving.Calibration.record ~meta:cal_meta ~mean:[| 0.; 0.; 0. |]
    ~std:[| 0.; nan; 1. |] ~observed:[| 0.0; 0.0; 0.5 |];
  let st = Serving.Calibration.stats cal_meta in
  check_int "all rows scored" 3 st.Serving.Calibration.window;
  checkf_eps "degenerate sigmas are misses" 1e-12 (1. /. 3.)
    st.Serving.Calibration.coverage3;
  (* length mismatch is a caller bug *)
  check_bool "length mismatch rejected" true
    (try
       Serving.Calibration.record ~meta:cal_meta ~mean:[| 0. |]
         ~std:[| 1.; 1. |] ~observed:[| 0.1 |];
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The allocation-free predict path: the [_into] twins must be
   bit-identical to the allocating calls, and steady-state serving must
   not allocate per query.                                              *)

let test_predict_into_matches () =
  let s = make_synth ~k:30 ~r:12 () in
  let p = Serving.Predictor.of_artifact (artifact_of s) in
  let scratch = Serving.Predictor.Scratch.create ~capacity:8 p in
  List.iter
    (fun n ->
      let q = queries s n in
      let expect = Serving.Predictor.predict p q in
      (* deliberately longer than the batch: only the first n entries
         are the contract *)
      let means = Array.make (n + 3) nan in
      Serving.Predictor.predict_into p ~scratch q ~means;
      for i = 0 to n - 1 do
        if not (Float.equal expect.(i) means.(i)) then
          Alcotest.failf "predict_into diverges at %d (batch %d)" i n
      done)
    (* 17 and 40 overflow the capacity-8 arena and exercise growth *)
    [ 1; 5; 8; 17; 40 ]

let test_predict_with_std_into_matches () =
  let s = make_synth ~k:24 ~r:10 () in
  let p = Serving.Predictor.of_artifact (artifact_of s) in
  let scratch = Serving.Predictor.Scratch.create ~capacity:4 p in
  List.iter
    (fun n ->
      let q = queries s n in
      let em, es = Serving.Predictor.predict_with_std p q in
      let means = Array.make n nan and stds = Array.make n nan in
      Serving.Predictor.predict_with_std_into p ~scratch q ~means ~stds;
      check_bool "means bit-identical" true (Array.for_all2 Float.equal em means);
      check_bool "stds bit-identical" true (Array.for_all2 Float.equal es stds))
    [ 1; 4; 11; 32 ]

let test_scratch_misuse_rejected () =
  let s = make_synth ~k:10 ~r:6 () in
  let a = artifact_of s in
  let p = Serving.Predictor.of_artifact a in
  let other = Serving.Predictor.of_artifact a in
  let scratch = Serving.Predictor.Scratch.create p in
  let q = queries s 4 in
  check_bool "foreign scratch refused" true
    (try
       Serving.Predictor.predict_into other ~scratch q
         ~means:(Array.make 4 0.);
       false
     with Invalid_argument _ -> true);
  check_bool "short means buffer refused" true
    (try
       Serving.Predictor.predict_into p ~scratch q ~means:(Array.make 3 0.);
       false
     with Invalid_argument _ -> true);
  check_bool "short stds buffer refused" true
    (try
       Serving.Predictor.predict_with_std_into p ~scratch q
         ~means:(Array.make 4 0.) ~stds:(Array.make 3 0.);
       false
     with Invalid_argument _ -> true)

(* The allocation-regression gate: after warm-up, a steady-state
   predict-with-std batch must run without any per-query minor-heap
   allocation. The budget is a small per-CALL constant (closure shells
   on the observability bracket), far below one boxed float per query —
   so any reintroduced per-query or per-row allocation trips it. *)
let test_predict_allocation_gate () =
  let s = make_synth ~k:30 ~r:12 () in
  let p = Serving.Predictor.of_artifact (artifact_of s) in
  let batch = 64 in
  let scratch = Serving.Predictor.Scratch.create ~capacity:batch p in
  let q = queries s batch in
  let means = Array.make batch 0. and stds = Array.make batch 0. in
  (* warm-up: fault in any lazy state *)
  for _ = 1 to 3 do
    Serving.Predictor.predict_with_std_into p ~scratch q ~means ~stds
  done;
  let calls = 50 in
  let before = Gc.minor_words () in
  for _ = 1 to calls do
    Serving.Predictor.predict_with_std_into p ~scratch q ~means ~stds
  done;
  let words = Gc.minor_words () -. before in
  let per_call = words /. float_of_int calls in
  if per_call > 64. then
    Alcotest.failf
      "predict allocates %.1f minor words per %d-point call (budget 64)"
      per_call batch;
  (* and the means-only path is at least as tight *)
  let before = Gc.minor_words () in
  for _ = 1 to calls do
    Serving.Predictor.predict_into p ~scratch q ~means
  done;
  let words = Gc.minor_words () -. before in
  let per_call = words /. float_of_int calls in
  if per_call > 64. then
    Alcotest.failf "predict_into allocates %.1f minor words per call" per_call

(* ------------------------------------------------------------------ *)
(* Golden fingerprints, captured from the seed float-array kernels
   before the Bigarray storage port. These pin fit coefficients, the
   serialized store bytes, a 64-query predict, and a 4-batch
   incremental-update trajectory to the exact bit patterns the seed
   produced: any change to summation order or storage layout that
   perturbs a single bit anywhere in the fit/predict/update pipeline
   fails here.                                                          *)

let golden_fp = Serving.Artifact.fingerprint

let test_golden_fingerprints () =
  let rng = Stats.Rng.create 987654321 in
  let r = 6 in
  let basis = Polybasis.Basis.total_degree ~r ~d:2 in
  let m = Polybasis.Basis.size basis in
  let truth = Array.init m (fun i -> cos (float_of_int (i + 1))) in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.2 *. Stats.Rng.gaussian rng))))
      truth
  in
  let k = 48 in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (0.02 *. Stats.Rng.gaussian rng))
  in
  let prior = Bmf.Prior.nonzero_mean early in
  let hyper, _ = Bmf.Hyper.select ~rng ~g ~f ~prior () in
  let gmeta =
    {
      Serving.Artifact.circuit = "golden";
      metric = "fp";
      scale = "quick";
      seed = 13;
    }
  in
  let a =
    Serving.Artifact.of_fit ~meta:gmeta ~basis ~prior ~hyper ~g ~f ()
  in
  check_string "fit coefficients" "715c141c3df234c1"
    (golden_fp a.Serving.Artifact.coeffs);
  check_string "binary store bytes" "63b4e116cb957761"
    (Serving.Artifact.checksum_hex
       (Serving.Artifact.to_string Serving.Artifact.Binary a));
  let p = Serving.Predictor.of_artifact a in
  let q =
    Linalg.Mat.of_rows (List.init 64 (fun _ -> Stats.Rng.gaussian_vec rng r))
  in
  check_string "64-query predict" "4b2f341a8c3a237f"
    (golden_fp (Serving.Predictor.predict p q));
  let means, stds = Serving.Predictor.predict_with_std p q in
  check_string "predict_with_std means" "4b2f341a8c3a237f" (golden_fp means);
  check_string "predict_with_std stds" "a472e06c71b78662" (golden_fp stds);
  (* the allocation-free twins must land on the same goldens *)
  let scratch = Serving.Predictor.Scratch.create ~capacity:64 p in
  let means' = Array.make 64 0. and stds' = Array.make 64 0. in
  Serving.Predictor.predict_into p ~scratch q ~means:means';
  check_string "predict_into golden" "4b2f341a8c3a237f" (golden_fp means');
  Serving.Predictor.predict_with_std_into p ~scratch q ~means:means'
    ~stds:stds';
  check_string "predict_with_std_into means golden" "4b2f341a8c3a237f"
    (golden_fp means');
  check_string "predict_with_std_into stds golden" "a472e06c71b78662"
    (golden_fp stds');
  (* incremental trajectory: 4 batches of 8, then re-serialization *)
  let inc = Serving.Incremental.of_artifact a in
  let expected_steps =
    [|
      "c89d3ee9db84926c";
      "223148002187a39c";
      "348daa59116fd2fb";
      "1152e9e731be3594";
    |]
  in
  for b = 0 to 3 do
    let xs = Stats.Sampling.monte_carlo rng ~k:8 ~r in
    let gq = Polybasis.Basis.design_matrix basis xs in
    let fb =
      Array.init 8 (fun i ->
          Linalg.Vec.dot (Linalg.Mat.row gq i) truth
          +. (0.02 *. Stats.Rng.gaussian rng))
    in
    Serving.Incremental.add_batch inc ~xs ~f:fb;
    check_string
      (Printf.sprintf "incremental step %d coefficients" b)
      expected_steps.(b)
      (golden_fp (Serving.Incremental.coeffs inc))
  done;
  check_string "incremental store bytes" "9e953861794d2b2b"
    (Serving.Artifact.checksum_hex
       (Serving.Artifact.to_string Serving.Artifact.Binary
          (Serving.Incremental.to_artifact inc)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serving"
    [
      ( "artifact",
        [
          Alcotest.test_case "of_fit = solver" `Quick
            test_of_fit_matches_solver;
          Alcotest.test_case "json round-trip" `Quick test_roundtrip_json;
          Alcotest.test_case "binary round-trip" `Quick test_roundtrip_binary;
          Alcotest.test_case "binary corruption" `Quick
            test_binary_corruption_detected;
          Alcotest.test_case "json corruption" `Quick
            test_json_corruption_detected;
        ] );
      ( "store",
        [
          Alcotest.test_case "save/load/list" `Quick test_store_save_load_list;
          Alcotest.test_case "atomic save" `Quick test_store_atomic_save;
          Alcotest.test_case "tamper detection" `Quick
            test_store_detects_tampering;
          Alcotest.test_case "sanitize collisions" `Quick
            test_store_collision_distinct_files;
          Alcotest.test_case "legacy names load" `Quick
            test_store_loads_legacy_names;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick
            test_journal_tolerates_torn_tail;
          Alcotest.test_case "garbage" `Quick test_journal_rejects_garbage;
        ] );
      ( "crash",
        [
          Alcotest.test_case "env arming" `Quick test_crashpoint_env_arming;
          Alcotest.test_case "kill at every save step" `Quick
            test_crash_at_every_save_step;
          Alcotest.test_case "kill at every protocol step" `Quick
            test_crash_at_every_update_protocol_step;
          Alcotest.test_case "random interleavings" `Quick
            test_crash_random_interleavings;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "blocked design matrix" `Quick
            test_blocked_design_matrix_matches;
          Alcotest.test_case "means" `Quick test_predictor_mean_matches_basis;
          Alcotest.test_case "variance = posterior" `Quick
            test_predictor_variance_matches_posterior;
          Alcotest.test_case "rejects dim mismatch" `Quick
            test_predictor_rejects_dim_mismatch;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "matches cold refit" `Quick
            test_incremental_matches_cold_refit;
          Alcotest.test_case "single points" `Quick
            test_incremental_single_points;
          Alcotest.test_case "store round-trip" `Quick
            test_incremental_to_artifact_roundtrip;
          Alcotest.test_case "rejects bad rows" `Quick
            test_incremental_rejects_bad_rows;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "known residual stream" `Quick
            test_calibration_known_residuals;
          Alcotest.test_case "rolling window wrap" `Quick
            test_calibration_window_wrap;
          Alcotest.test_case "degenerate sigmas and gating" `Quick
            test_calibration_degenerate_and_gating;
        ] );
      ( "into-kernels",
        [
          Alcotest.test_case "predict_into = predict" `Quick
            test_predict_into_matches;
          Alcotest.test_case "predict_with_std_into = predict_with_std"
            `Quick test_predict_with_std_into_matches;
          Alcotest.test_case "scratch misuse rejected" `Quick
            test_scratch_misuse_rejected;
        ] );
      ( "alloc-gate",
        [
          Alcotest.test_case "steady-state predict is allocation-free"
            `Quick test_predict_allocation_gate;
        ] );
      ( "golden",
        [
          Alcotest.test_case "seed fingerprints" `Quick
            test_golden_fingerprints;
        ] );
    ]
