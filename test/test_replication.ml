(* Tests for the replication subsystem: wire opcodes for the
   subscription/entry-stream protocol, the journal tail reader, backoff
   determinism, leader-side source bookkeeping, follower-side apply
   semantics, an in-process leader/follower pair proving bit-identical
   reads off the follower, and a cross-process SIGKILL failover harness
   checking every surviving replica against an uncrashed oracle. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let rng = Stats.Rng.create 20130608

(* Same small fitted problem as test_server: enough structure to
   exercise the variance path, small enough to stream fast. *)
type synth = {
  basis : Polybasis.Basis.t;
  prior : Bmf.Prior.t;
  hyper : float;
  g : Linalg.Mat.t;
  f : Linalg.Vec.t;
  truth : Linalg.Vec.t;
}

let make_synth ?(k = 40) ?(r = 25) ?(noise = 0.01) () =
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i -> if i = 0 then 3. else 1. /. float_of_int (i + 1))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
      truth
  in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (noise *. Stats.Rng.gaussian rng))
  in
  let prior = Bmf.Prior.nonzero_mean early in
  let hyper, _ = Bmf.Hyper.select ~rng ~g ~f ~prior () in
  { basis; prior; hyper; g; f; truth }

let meta =
  { Serving.Artifact.circuit = "test"; metric = "m"; scale = "repl"; seed = 7 }

let artifact_of (s : synth) =
  Serving.Artifact.of_fit ~meta ~basis:s.basis ~prior:s.prior ~hyper:s.hyper
    ~g:s.g ~f:s.f ()

(* A fresh sample batch consistent with the synthetic truth, keyed by
   [tag] so every round of a replication run folds in distinct data. *)
let fresh_batch (s : synth) ~tag ~k =
  let rng = Stats.Rng.create (7000 + tag) in
  let r = Polybasis.Basis.dim s.basis in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs i))
          s.truth)
  in
  (xs, f)

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bmf-repl-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists root then rm root;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists root then rm root)
    (fun () -> f root)

let ok what = function
  | Ok v -> v
  | Error (e : Server.Wire.error) ->
      Alcotest.failf "%s: %s: %s" what
        (Server.Wire.error_code_name e.code)
        e.message

(* ------------------------------------------------------------------ *)
(* Wire codec: replication opcodes                                     *)

let frame_of str =
  match Server.Wire.peek str ~off:0 with
  | `Frame (f, next) ->
      check_int "frame consumed the whole string" (String.length str) next;
      f
  | `Need n -> Alcotest.failf "incomplete frame: need %d more bytes" n
  | `Bad msg -> Alcotest.failf "bad frame: %s" msg

let roundtrip_request req =
  let s = Server.Wire.encode_request ~id:42 req in
  match Server.Wire.decode_request (frame_of s) with
  | Error e -> Alcotest.failf "decode_request failed: %s" e
  | Ok got -> got

let test_replication_request_roundtrips () =
  let other = { meta with Serving.Artifact.metric = "power" } in
  (match
     roundtrip_request
       (Server.Wire.Subscribe_req { vector = [ (meta, 3); (other, 0) ] })
   with
  | Server.Wire.Subscribe_req { vector = [ (m1, 3); (m2, 0) ] } ->
      check_bool "first meta" true (m1 = meta);
      check_bool "second meta" true (m2 = other)
  | _ -> Alcotest.fail "subscribe round-trip");
  (match roundtrip_request (Server.Wire.Subscribe_req { vector = [] }) with
  | Server.Wire.Subscribe_req { vector = [] } -> ()
  | _ -> Alcotest.fail "empty-vector subscribe round-trip");
  (match roundtrip_request (Server.Wire.Repl_ack_req { seq = 12345 }) with
  | Server.Wire.Repl_ack_req { seq = 12345 } -> ()
  | _ -> Alcotest.fail "repl_ack round-trip");
  (match roundtrip_request Server.Wire.Promote_req with
  | Server.Wire.Promote_req -> ()
  | _ -> Alcotest.fail "promote round-trip");
  (* a negative revision/sequence can never be legal state *)
  (match
     Server.Wire.decode_request
       (frame_of
          (Server.Wire.encode_request ~id:1
             (Server.Wire.Subscribe_req { vector = [ (meta, -1) ] })))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative revision accepted");
  match
    Server.Wire.decode_request
      (frame_of
         (Server.Wire.encode_request ~id:1
            (Server.Wire.Repl_ack_req { seq = -7 })))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative ack sequence accepted"

let roundtrip_push p =
  let s = Server.Wire.encode_push p in
  let f = frame_of s in
  check_bool "kind byte is in the push space" true
    (Server.Wire.is_push_kind f.Server.Wire.frame_kind);
  match Server.Wire.decode_push f with
  | Error e -> Alcotest.failf "decode_push failed: %s" e
  | Ok got -> got

let test_push_roundtrips () =
  (match
     roundtrip_push
       (Server.Wire.Snapshot_chunk
          { meta; rev = 4; total = 10; offset = 3; data = "abcd" })
   with
  | Server.Wire.Snapshot_chunk
      { meta = m; rev = 4; total = 10; offset = 3; data = "abcd" } ->
      check_bool "snapshot meta" true (m = meta)
  | _ -> Alcotest.fail "snapshot_chunk round-trip");
  (* a streamed WAL record survives the trip and still checksums *)
  let s = make_synth ~k:8 ~r:4 () in
  let xs, f = fresh_batch s ~tag:1 ~k:3 in
  let entry = { Serving.Journal.meta; base_rev = 2; xs; f } in
  let encoded = Serving.Journal.encode_entry entry in
  (match
     roundtrip_push
       (Server.Wire.Journal_entry { seq = 9; ts = 1234.5; entry = encoded })
   with
  | Server.Wire.Journal_entry { seq = 9; ts = 1234.5; entry = e } -> (
      match Serving.Journal.decode_entry e with
      | Error msg -> Alcotest.failf "shipped entry did not decode: %s" msg
      | Ok back ->
          check_bool "entry meta" true (back.Serving.Journal.meta = meta);
          check_int "entry base_rev" 2 back.Serving.Journal.base_rev;
          check_bool "entry responses bit-identical" true
            (Array.for_all2 Float.equal f back.Serving.Journal.f))
  | _ -> Alcotest.fail "journal_entry round-trip");
  (* a corrupted record is caught by the fnv64 check, not misapplied *)
  let flipped = Bytes.of_string encoded in
  Bytes.set flipped
    (Bytes.length flipped - 1)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped - 1)) lxor 1));
  (match Serving.Journal.decode_entry (Bytes.to_string flipped) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit-flipped entry passed the checksum");
  (match
     roundtrip_push
       (Server.Wire.Repl_status { seq = 77; snapshots = 2; ts = 9.25 })
   with
  | Server.Wire.Repl_status { seq = 77; snapshots = 2; ts = 9.25 } -> ()
  | _ -> Alcotest.fail "repl_status round-trip");
  (match roundtrip_push (Server.Wire.Repl_heartbeat { seq = 5; ts = 2.5 }) with
  | Server.Wire.Repl_heartbeat { seq = 5; ts = 2.5 } -> ()
  | _ -> Alcotest.fail "repl_heartbeat round-trip");
  (* impossible chunk geometry must be refused *)
  let bad_geometry =
    Server.Wire.encode_push
      (Server.Wire.Snapshot_chunk
         { meta; rev = 1; total = 4; offset = 3; data = "abcd" })
  in
  (match Server.Wire.decode_push (frame_of bad_geometry) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "chunk overrunning its total accepted");
  (* garbage bodies decode to Error, never raise *)
  let garbage =
    {
      Server.Wire.frame_version = 2;
      frame_kind = 33 (* journal_entry *);
      frame_id = 0;
      frame_deadline_ms = 0;
      frame_trace = 0;
      frame_span = 0;
      body = String.make 32 '\xfe';
    }
  in
  (match Server.Wire.decode_push garbage with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage push body decoded"
  | exception e ->
      Alcotest.failf "decode_push raised %s" (Printexc.to_string e));
  check_bool "response kinds are not push kinds" false
    (Server.Wire.is_push_kind 1)

let test_not_leader_roundtrip () =
  let msg = "not the leader; updates are accepted at unix:///tmp/l.sock" in
  let encoded =
    Server.Wire.encode_response ~id:5
      (Server.Wire.Error
         { Server.Wire.code = Server.Wire.Not_leader; message = msg })
  in
  match
    Server.Wire.decode_response ~expect:Server.Wire.Update (frame_of encoded)
  with
  | Ok (Server.Wire.Error e) ->
      check_bool "code" true (e.Server.Wire.code = Server.Wire.Not_leader);
      check_string "message" msg e.Server.Wire.message;
      (match Server.Client.leader_hint e with
      | Some (Server.Daemon.Unix_socket "/tmp/l.sock") -> ()
      | _ -> Alcotest.fail "leader_hint did not recover the address");
      check_bool "no hint on other errors" true
        (Server.Client.leader_hint
           { e with Server.Wire.code = Server.Wire.Busy }
        = None)
  | _ -> Alcotest.fail "not_leader round-trip"

(* ------------------------------------------------------------------ *)
(* Journal tail reader                                                 *)

let test_tail_cross_process_appends () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:8 ~r:4 () in
  let batch tag = fresh_batch s ~tag ~k:2 in
  let tail = Serving.Journal.Tail.create ~root in
  (* nothing there yet: no file is not an error *)
  let entries, diag = Serving.Journal.Tail.poll tail in
  check_int "empty poll" 0 (List.length entries);
  check_bool "no diagnostic" true (diag = None);
  (* a forked child appends two entries and exits; the parent's tail
     must observe exactly them, in order *)
  Parallel.Pool.set_default_jobs 1;
  flush stdout;
  flush stderr;
  (match Unix.fork () with
  | 0 ->
      (try
         let j = Serving.Journal.open_ ~durability:`Durable ~root () in
         let xs0, f0 = batch 0 and xs1, f1 = batch 1 in
         Serving.Journal.append j
           { Serving.Journal.meta; base_rev = 1; xs = xs0; f = f0 };
         Serving.Journal.append j
           { Serving.Journal.meta; base_rev = 2; xs = xs1; f = f1 };
         Serving.Journal.close j;
         Unix._exit 0
       with _ -> Unix._exit 2)
  | pid -> (
      match snd (Unix.waitpid [] pid) with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "appender child failed"));
  let entries, diag = Serving.Journal.Tail.poll tail in
  check_bool "no diagnostic" true (diag = None);
  check_int "both entries observed" 2 (List.length entries);
  List.iteri
    (fun i e ->
      check_int "entry order" (i + 1) e.Serving.Journal.base_rev;
      let _, expect_f = batch i in
      check_bool "entry payload bit-identical" true
        (Array.for_all2 Float.equal expect_f e.Serving.Journal.f))
    entries;
  (* a second poll re-delivers nothing *)
  let again, _ = Serving.Journal.Tail.poll tail in
  check_int "no re-delivery" 0 (List.length again)

let test_tail_torn_final_entry () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:8 ~r:4 () in
  let xs0, f0 = fresh_batch s ~tag:10 ~k:2 in
  let xs1, f1 = fresh_batch s ~tag:11 ~k:2 in
  let whole = { Serving.Journal.meta; base_rev = 5; xs = xs0; f = f0 } in
  let torn = { Serving.Journal.meta; base_rev = 6; xs = xs1; f = f1 } in
  (* lay down one complete entry through the normal writer *)
  let j = Serving.Journal.open_ ~durability:`Fast ~root () in
  Serving.Journal.append j whole;
  Serving.Journal.close j;
  let path = Serving.Journal.file ~root in
  let torn_bytes = Serving.Journal.encode_entry torn in
  let cut = String.length torn_bytes / 2 in
  let append_raw s =
    let oc =
      open_out_gen [ Open_append; Open_binary ] 0o644 path
    in
    output_string oc s;
    close_out oc
  in
  (* ... then half of the next one, as a crashed writer would leave it *)
  append_raw (String.sub torn_bytes 0 cut);
  let tail = Serving.Journal.Tail.create ~root in
  let entries, _ = Serving.Journal.Tail.poll tail in
  check_int "only the whole entry delivered" 1 (List.length entries);
  check_int "whole entry is the first" 5
    (List.hd entries).Serving.Journal.base_rev;
  (* the torn suffix arrives: the parked entry becomes whole *)
  append_raw (String.sub torn_bytes cut (String.length torn_bytes - cut));
  let entries, diag = Serving.Journal.Tail.poll tail in
  check_bool "no diagnostic once whole" true (diag = None);
  check_int "completed entry delivered" 1 (List.length entries);
  check_int "completed entry revision" 6
    (List.hd entries).Serving.Journal.base_rev;
  check_bool "completed entry payload" true
    (Array.for_all2 Float.equal f1 (List.hd entries).Serving.Journal.f)

let test_tail_truncation_resets () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:8 ~r:4 () in
  let xs, f = fresh_batch s ~tag:20 ~k:2 in
  let j = Serving.Journal.open_ ~durability:`Fast ~root () in
  Serving.Journal.append j { Serving.Journal.meta; base_rev = 1; xs; f };
  let tail = Serving.Journal.Tail.create ~root in
  let entries, _ = Serving.Journal.Tail.poll tail in
  check_int "first incarnation read" 1 (List.length entries);
  let offset_before = Serving.Journal.Tail.offset tail in
  check_bool "offset advanced" true (offset_before > 0);
  (* the writer truncates (commit) and starts a new incarnation *)
  Serving.Journal.truncate j;
  Serving.Journal.append j { Serving.Journal.meta; base_rev = 2; xs; f };
  Serving.Journal.close j;
  let entries, diag = Serving.Journal.Tail.poll tail in
  check_bool "no diagnostic across reset" true (diag = None);
  check_int "new incarnation read from the top" 1 (List.length entries);
  check_int "new incarnation entry" 2
    (List.hd entries).Serving.Journal.base_rev

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)

let test_backoff_deterministic () =
  let policy =
    {
      Replication.Backoff.base_s = 0.1;
      multiplier = 2.;
      max_s = 1.;
      jitter = 0.2;
      max_attempts = 4;
    }
  in
  let a = Replication.Backoff.create ~policy ~seed:99 () in
  let b = Replication.Backoff.create ~policy ~seed:99 () in
  let delays = Array.init 8 (fun _ -> Replication.Backoff.next_delay_s a) in
  (* same seed, same sequence: tests can replay schedules exactly *)
  Array.iter
    (fun d ->
      check_bool "deterministic given the seed" true
        (Float.equal d (Replication.Backoff.next_delay_s b)))
    delays;
  (* every delay respects the jittered envelope of the capped curve *)
  Array.iteri
    (fun i d ->
      let ideal = Float.min policy.max_s (0.1 *. (2. ** float_of_int i)) in
      check_bool
        (Printf.sprintf "delay %d within jitter envelope" i)
        true
        (d >= ideal *. 0.8 -. 1e-12 && d <= ideal *. 1.2 +. 1e-12))
    delays;
  check_bool "later delays sit at the cap" true
    (delays.(6) <= 1.2 && delays.(6) >= 0.8);
  check_int "attempts counted" 8 (Replication.Backoff.attempts a);
  check_bool "exhausted after max_attempts" true
    (Replication.Backoff.exhausted a);
  Replication.Backoff.reset a;
  check_int "reset clears attempts" 0 (Replication.Backoff.attempts a);
  check_bool "reset rearms" false (Replication.Backoff.exhausted a);
  let after_reset = Replication.Backoff.next_delay_s a in
  check_bool "reset restarts from base" true
    (after_reset >= 0.08 -. 1e-12 && after_reset <= 0.12 +. 1e-12);
  (* invalid policies are refused up front *)
  match
    Replication.Backoff.create
      ~policy:{ policy with Replication.Backoff.jitter = 1.5 }
      ()
  with
  | _ -> Alcotest.fail "jitter >= 1 accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Source bookkeeping                                                  *)

let test_source_catchup_and_acks () =
  let s = make_synth ~k:10 ~r:5 () in
  let a = artifact_of s in
  let other = { meta with Serving.Artifact.metric = "power" } in
  let b = { a with Serving.Artifact.meta = other; rev = 3 } in
  (* behind on [a], current on [b]: only [a] ships *)
  let plan =
    Replication.Source.plan_catchup ~have:[ a; b ]
      ~vector:[ (meta, a.Serving.Artifact.rev - 1); (other, 3) ]
  in
  (match plan with
  | [ (m, rev, bytes) ] ->
      check_bool "stale model planned" true (m = meta);
      check_int "at the leader's revision" a.Serving.Artifact.rev rev;
      (match Serving.Artifact.of_string bytes with
      | Ok back ->
          check_bool "snapshot bytes round-trip" true
            (Array.for_all2 Float.equal a.Serving.Artifact.coeffs
               back.Serving.Artifact.coeffs)
      | Error e -> Alcotest.failf "snapshot bytes did not decode: %s" e)
  | plan -> Alcotest.failf "expected 1 snapshot, got %d" (List.length plan));
  (* unknown model ships; a follower that is ahead is left alone *)
  check_int "absent model ships" 2
    (List.length (Replication.Source.plan_catchup ~have:[ a; b ] ~vector:[]));
  check_int "ahead follower skipped" 0
    (List.length
       (Replication.Source.plan_catchup ~have:[ a ]
          ~vector:[ (meta, a.Serving.Artifact.rev + 5) ]));
  let src : int Replication.Source.t = Replication.Source.create () in
  check_bool "no subscribers, no min ack" true
    (Replication.Source.min_acked src = None);
  Replication.Source.register src 1 ~acked:10;
  Replication.Source.register src 2 ~acked:12;
  check_int "two subscribers" 2 (Replication.Source.count src);
  check_bool "min ack is the slowest" true
    (Replication.Source.min_acked src = Some 10);
  Replication.Source.ack src 1 ~seq:15;
  check_bool "acks advance" true
    (Replication.Source.min_acked src = Some 12);
  Replication.Source.ack src 1 ~seq:3;
  check_bool "acks never move backwards" true
    (Replication.Source.min_acked src = Some 12);
  Replication.Source.register src 1 ~acked:0;
  check_int "re-register keeps one slot" 2 (Replication.Source.count src);
  check_bool "re-register resets the ack" true
    (Replication.Source.min_acked src = Some 0);
  Replication.Source.drop src 1;
  check_int "drop removes" 1 (Replication.Source.count src);
  Replication.Source.drop src 99 (* unknown: ignored *);
  Replication.Source.drop src 2;
  check_bool "empty again" true (Replication.Source.min_acked src = None)

(* ------------------------------------------------------------------ *)
(* Follower apply                                                      *)

let test_apply_entry_and_snapshot () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  let journal = Serving.Journal.open_ ~durability:`Fast ~root () in
  let xs, f = fresh_batch s ~tag:30 ~k:5 in
  let entry =
    { Serving.Journal.meta; base_rev = a.Serving.Artifact.rev; xs; f }
  in
  (* the reference: the same rank-1 update applied directly *)
  let upd = Serving.Incremental.of_artifact a in
  Serving.Incremental.add_batch upd ~xs ~f;
  let reference = Serving.Incremental.to_artifact upd in
  (match Replication.Apply.entry ~durability:`Fast ~root ~journal entry with
  | Replication.Apply.Applied b ->
      check_int "revision bumped" (a.Serving.Artifact.rev + 1)
        b.Serving.Artifact.rev;
      check_bool "apply is the exact incremental update" true
        (Array.for_all2 Float.equal reference.Serving.Artifact.coeffs
           b.Serving.Artifact.coeffs)
  | _ -> Alcotest.fail "entry did not apply");
  (* the journal was truncated after the durable save: nothing replays *)
  let back, _ = Serving.Journal.read ~root in
  check_int "journal truncated after apply" 0 (List.length back);
  (* duplicate delivery: already past base_rev *)
  (match Replication.Apply.entry ~durability:`Fast ~root ~journal entry with
  | Replication.Apply.Stale rev ->
      check_int "stale reports the local revision" (a.Serving.Artifact.rev + 1)
        rev
  | _ -> Alcotest.fail "duplicate was not reported stale");
  (* a revision hole cannot apply *)
  (match
     Replication.Apply.entry ~durability:`Fast ~root ~journal
       { entry with Serving.Journal.base_rev = a.Serving.Artifact.rev + 7 }
   with
  | Replication.Apply.Gap _ -> ()
  | _ -> Alcotest.fail "revision hole applied");
  (* unknown model cannot apply *)
  (match
     Replication.Apply.entry ~durability:`Fast ~root ~journal
       {
         entry with
         Serving.Journal.meta =
           { meta with Serving.Artifact.circuit = "ghost" };
       }
   with
  | Replication.Apply.Gap _ -> ()
  | _ -> Alcotest.fail "unknown model applied");
  Serving.Journal.close journal;
  (* snapshots: a newer one installs, an older one is a no-op *)
  let newer = { reference with Serving.Artifact.rev = 50 } in
  (match
     Replication.Apply.snapshot ~durability:`Fast ~root
       (Serving.Artifact.to_string Serving.Artifact.Binary newer)
   with
  | Ok b -> check_int "snapshot installed" 50 b.Serving.Artifact.rev
  | Error e -> Alcotest.failf "snapshot refused: %s" e);
  (match
     Replication.Apply.snapshot ~durability:`Fast ~root
       (Serving.Artifact.to_string Serving.Artifact.Binary a)
   with
  | Ok b ->
      check_int "older snapshot skipped, local kept" 50 b.Serving.Artifact.rev
  | Error e -> Alcotest.failf "older snapshot errored: %s" e);
  match Replication.Apply.snapshot ~durability:`Fast ~root "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage snapshot installed"

(* ------------------------------------------------------------------ *)
(* In-process leader/follower pair                                     *)

let with_pair ~root f =
  (* materialize the shared pool before any server domain spawns *)
  ignore (Parallel.Pool.run (Array.init 8 (fun i () -> i)));
  let leader_root = Filename.concat root "leader" in
  let follower_root = Filename.concat root "follower" in
  let laddr = Server.Daemon.Unix_socket (Filename.concat root "l.sock") in
  let faddr = Server.Daemon.Unix_socket (Filename.concat root "f.sock") in
  let config =
    { Server.Daemon.default_config with Server.Daemon.durability = `Fast }
  in
  let leader = Server.Daemon.create ~config ~root:leader_root laddr in
  let ld = Domain.spawn (fun () -> Server.Daemon.run leader) in
  let follower =
    Server.Daemon.create ~config ~follow:laddr ~root:follower_root faddr
  in
  let fd = Domain.spawn (fun () -> Server.Daemon.run follower) in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop follower;
      Server.Daemon.stop leader;
      Domain.join fd;
      Domain.join ld)
    (fun () -> f ~leader ~follower ~laddr ~faddr)

let wait_until ?(timeout_s = 15.) what cond =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let follower_seq cf =
  match Server.Client.stats cf with
  | Ok st -> st.Server.Client.journal_seq
  | Error _ -> -1

let test_pair_catchup_stream_and_promote () =
  with_temp_root @@ fun root ->
  let s = make_synth () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root:(Filename.concat root "leader") a);
  with_pair ~root @@ fun ~leader:_ ~follower ~laddr ~faddr ->
  let cl = Server.Client.connect laddr in
  let cf = Server.Client.connect faddr in
  Fun.protect
    ~finally:(fun () ->
      Server.Client.close cf;
      Server.Client.close cl)
  @@ fun () ->
  (* snapshot catch-up: the empty follower acquires the model *)
  wait_until "snapshot catch-up" (fun () ->
      match Server.Client.list_models cf with
      | Ok infos ->
          List.exists
            (fun (i : Server.Wire.model_info) -> i.Server.Wire.meta = meta)
            infos
      | Error _ -> false);
  (* roles are what they claim *)
  let stl = ok "leader stats" (Server.Client.stats cl) in
  check_string "leader role" "leader" stl.Server.Client.role;
  let stf = ok "follower stats" (Server.Client.stats cf) in
  check_string "follower role" "follower" stf.Server.Client.role;
  (match Server.Daemon.role follower with
  | `Follower l -> check_bool "follower names its leader" true (l = laddr)
  | `Leader -> Alcotest.fail "follower believes it is the leader");
  (* stream three updates through the leader, tracking the oracle *)
  let oracle = ref a in
  for tag = 1 to 3 do
    let xs, f = fresh_batch s ~tag:(100 + tag) ~k:4 in
    let rev, _ = ok "update" (Server.Client.update cl meta ~xs ~f) in
    check_int "leader revision advances" (a.Serving.Artifact.rev + tag) rev;
    let upd = Serving.Incremental.of_artifact !oracle in
    Serving.Incremental.add_batch upd ~xs ~f;
    oracle := Serving.Incremental.to_artifact upd
  done;
  wait_until "entry stream drain" (fun () -> follower_seq cf >= 3);
  (* the follower answers the same 64-query fingerprint as a direct
     Predictor over the oracle artifact — the bit-identity bar *)
  let q =
    let r = Polybasis.Basis.dim s.basis in
    let qrng = Stats.Rng.create 881 in
    Linalg.Mat.of_rows (List.init 64 (fun _ -> Stats.Rng.gaussian_vec qrng r))
  in
  let direct =
    Serving.Predictor.predict (Serving.Predictor.of_artifact !oracle) q
  in
  let served = ok "follower predict" (Server.Client.predict cf meta q) in
  check_string "follower fingerprint matches direct predictor"
    (Serving.Artifact.fingerprint direct)
    (Serving.Artifact.fingerprint served);
  let dm, ds = ok "follower predict+std" (Server.Client.predict_with_std cf meta q) in
  check_bool "follower means (variance path) bit-identical" true
    (Array.for_all2 Float.equal direct dm);
  check_bool "follower stds finite" true (Array.for_all Float.is_finite ds);
  (* updates are refused with Not_leader naming the leader *)
  let xs, f = fresh_batch s ~tag:200 ~k:4 in
  (match Server.Client.update cf meta ~xs ~f with
  | Error e ->
      check_bool "refusal is not_leader" true
        (e.Server.Wire.code = Server.Wire.Not_leader);
      (match Server.Client.leader_hint e with
      | Some l -> check_bool "refusal names the leader" true (l = laddr)
      | None -> Alcotest.fail "not_leader carries no parseable address")
  | Ok _ -> Alcotest.fail "follower accepted an update");
  (* ... and update_with_redirect transparently lands it on the leader *)
  let result, redirected = Server.Client.update_with_redirect cf meta ~xs ~f in
  let rev, _ = ok "redirected update" result in
  check_int "redirect applied at the leader" (a.Serving.Artifact.rev + 4) rev;
  check_bool "redirect reported" true (redirected = Some laddr);
  (let upd = Serving.Incremental.of_artifact !oracle in
   Serving.Incremental.add_batch upd ~xs ~f;
   oracle := Serving.Incremental.to_artifact upd);
  wait_until "redirected entry drain" (fun () -> follower_seq cf >= 4);
  (* promote: the follower flips to leader and accepts updates *)
  let was_follower, seq = ok "promote" (Server.Client.promote cf) in
  check_bool "was a follower" true was_follower;
  check_int "promotion at the drained sequence" 4 seq;
  let stf = ok "stats after promote" (Server.Client.stats cf) in
  check_string "role after promote" "leader" stf.Server.Client.role;
  let xs, f = fresh_batch s ~tag:300 ~k:4 in
  let rev, _ = ok "post-promote update" (Server.Client.update cf meta ~xs ~f) in
  check_int "promoted daemon applies updates" (a.Serving.Artifact.rev + 5) rev;
  (* promoting a leader is a harmless no-op *)
  let was_follower, _ = ok "re-promote" (Server.Client.promote cf) in
  check_bool "already leader" false was_follower

(* ------------------------------------------------------------------ *)
(* Distributed trace propagation + replication telemetry               *)

let test_pair_trace_propagation_and_telemetry () =
  (* One traced client update must leave spans at the client, the
     leader and the follower that all share one trace id — the context
     rides the v2 request frame into the leader and the journal-entry
     push onto the follower. Calibration and lag telemetry publish on
     the way. *)
  Obs.Trace.start ();
  Obs.Metrics.enable ();
  Obs.Events.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.stop ();
      Obs.Trace.clear ();
      Obs.Metrics.disable ();
      Obs.Events.disable ();
      Obs.Events.clear ();
      Serving.Calibration.reset ())
  @@ fun () ->
  with_temp_root @@ fun root ->
  let s = make_synth () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root:(Filename.concat root "leader") a);
  (with_pair ~root @@ fun ~leader:_ ~follower:_ ~laddr ~faddr ->
   let cl = Server.Client.connect laddr in
   let cf = Server.Client.connect faddr in
   Fun.protect
     ~finally:(fun () ->
       Server.Client.close cf;
       Server.Client.close cl)
   @@ fun () ->
   wait_until "snapshot catch-up" (fun () ->
       match Server.Client.list_models cf with
       | Ok infos ->
           List.exists
             (fun (i : Server.Wire.model_info) -> i.Server.Wire.meta = meta)
             infos
       | Error _ -> false);
   let xs, f = fresh_batch s ~tag:900 ~k:4 in
   ignore (ok "traced update" (Server.Client.update cl meta ~xs ~f));
   wait_until "entry applied" (fun () -> follower_seq cf >= 1);
   (* calibration scored the update against the pre-update posterior on
      both replicas (leader at commit, follower at apply) *)
   let cal = Serving.Calibration.stats meta in
   check_bool "calibration recorded the update" true (cal.samples >= 4);
   check_bool "calibration gauge published" true
     (Obs.Metrics.find_gauge "bmf_calibration_coverage_1s"
        ~labels:[ ("model", Serving.Calibration.model_label meta) ]
     <> None);
   (* the follower's lag gauge exists and reads 0 once drained *)
   match Obs.Metrics.find_gauge "bmf_repl_follower_lag_entries" with
   | None -> Alcotest.fail "follower lag gauge not registered"
   | Some g ->
       wait_until "lag drains to zero" (fun () ->
           Float.equal 0. (Obs.Metrics.gauge_value g)));
  (* the pair has wound down: every daemon domain flushed its trace
     lane on exit, so the full distributed trace is visible *)
  let evs = Obs.Trace.events () in
  let find_trace name =
    List.filter_map
      (function
        | Obs.Trace.Complete { name = n; trace; _ } when n = name ->
            Some trace
        | _ -> None)
      evs
  in
  let cli = find_trace "cli_update" in
  check_bool "client span recorded" true (cli <> []);
  let t = List.hd cli in
  check_bool "client span carries a trace id" true (t > 0);
  let shares name =
    List.exists (fun tr -> tr = t) (find_trace name)
  in
  check_bool "leader request span joins the trace" true (shares "srv_request");
  check_bool "leader kernel span joins the trace" true (shares "srv_kernel");
  check_bool "follower apply span joins the trace" true (shares "repl_apply");
  (* the event ring saw the link come up *)
  let events, _ = Obs.Events.snapshot () in
  check_bool "link_up event emitted" true
    (List.exists (fun (e : Obs.Events.event) -> e.kind = "link_up") events)

(* ------------------------------------------------------------------ *)
(* Cross-process crash/failover harness                                *)

(* The leader runs in a forked child (forked BEFORE any domain exists
   in this test, so the child inherits no domain machinery); the
   follower runs in-process. After randomized update rounds the leader
   is SIGKILLed mid-flight, the follower is promoted, and every
   surviving store must be byte-identical to an uncrashed in-process
   oracle that applied the same batches. *)
let test_crash_failover_bit_identity () =
  Parallel.Pool.set_default_jobs 1;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_default_jobs 0)
  @@ fun () ->
  with_temp_root @@ fun root ->
  let s = make_synth () in
  let a = artifact_of s in
  let leader_root = Filename.concat root "leader" in
  let follower_root = Filename.concat root "follower" in
  ignore (Serving.Store.save ~root:leader_root a);
  let laddr = Server.Daemon.Unix_socket (Filename.concat root "l.sock") in
  let faddr = Server.Daemon.Unix_socket (Filename.concat root "f.sock") in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* child: the leader process, to be SIGKILLed *)
      (try
         let t = Server.Daemon.create ~root:leader_root laddr in
         Server.Daemon.run t;
         Unix._exit 0
       with _ -> Unix._exit 2)
  | leader_pid ->
      let reaped = ref false in
      let joined = ref false in
      let follower =
        Server.Daemon.create ~follow:laddr ~root:follower_root faddr
      in
      let fdom = Domain.spawn (fun () -> Server.Daemon.run follower) in
      let drain_follower () =
        if not !joined then begin
          joined := true;
          Server.Daemon.stop follower;
          Domain.join fdom
        end
      in
      Fun.protect
        ~finally:(fun () ->
          drain_follower ();
          if not !reaped then begin
            Unix.kill leader_pid Sys.sigkill;
            ignore (Unix.waitpid [] leader_pid)
          end)
      @@ fun () ->
      let cl = Server.Client.connect laddr in
      let cf = Server.Client.connect faddr in
      Fun.protect
        ~finally:(fun () ->
          Server.Client.close cf;
          Server.Client.close cl)
      @@ fun () ->
      (* randomized rounds: batch sizes drawn from a seeded stream *)
      let rounds = 6 in
      let krng = Stats.Rng.create 4242 in
      let oracle = ref a in
      for tag = 1 to rounds do
        let k = 2 + (Stats.Rng.int krng 5) in
        let xs, f = fresh_batch s ~tag:(500 + tag) ~k in
        ignore (ok "update" (Server.Client.update cl meta ~xs ~f));
        let upd = Serving.Incremental.of_artifact !oracle in
        Serving.Incremental.add_batch upd ~xs ~f;
        oracle := Serving.Incremental.to_artifact upd
      done;
      (* quiesce: the follower must have durably applied every round
         before the kill, so the oracle describes both replicas *)
      wait_until "pre-kill quiesce" (fun () -> follower_seq cf >= rounds);
      Unix.kill leader_pid Sys.sigkill;
      reaped := true;
      (match snd (Unix.waitpid [] leader_pid) with
      | Unix.WSIGNALED sg when sg = Sys.sigkill -> ()
      | _ -> Alcotest.fail "leader did not die by SIGKILL");
      (* the dead leader's root recovers clean (acked updates are
         durable) and holds exactly the oracle's bytes *)
      let report =
        Serving.Recovery.recover ~durability:`Fast ~root:leader_root ()
      in
      check_bool "dead leader root recovers clean" true
        (Serving.Recovery.clean report);
      let oracle_bytes =
        Serving.Artifact.to_string Serving.Artifact.Binary !oracle
      in
      (match Serving.Store.load ~root:leader_root meta with
      | Ok b ->
          check_bool "dead leader store byte-identical to oracle" true
            (String.equal oracle_bytes
               (Serving.Artifact.to_string Serving.Artifact.Binary b))
      | Error e -> Alcotest.failf "dead leader store: %s" e);
      (* failover: promote the follower and keep writing *)
      let was_follower, seq = ok "promote" (Server.Client.promote cf) in
      check_bool "survivor was the follower" true was_follower;
      check_int "promoted at the quiesced sequence" rounds seq;
      let xs, f = fresh_batch s ~tag:900 ~k:3 in
      let rev, _ =
        ok "post-failover update" (Server.Client.update cf meta ~xs ~f)
      in
      check_int "new leader applies updates"
        (a.Serving.Artifact.rev + rounds + 1)
        rev;
      (let upd = Serving.Incremental.of_artifact !oracle in
       Serving.Incremental.add_batch upd ~xs ~f;
       oracle := Serving.Incremental.to_artifact upd);
      (* the promoted replica serves the oracle's fingerprint *)
      let q =
        let r = Polybasis.Basis.dim s.basis in
        let qrng = Stats.Rng.create 883 in
        Linalg.Mat.of_rows
          (List.init 64 (fun _ -> Stats.Rng.gaussian_vec qrng r))
      in
      let direct =
        Serving.Predictor.predict (Serving.Predictor.of_artifact !oracle) q
      in
      let served = ok "promoted predict" (Server.Client.predict cf meta q) in
      check_string "promoted replica fingerprint matches oracle"
        (Serving.Artifact.fingerprint direct)
        (Serving.Artifact.fingerprint served);
      (* ... and its store is byte-identical to the oracle too (checked
         after the daemon drains so the save is complete) *)
      drain_follower ();
      match Serving.Store.load ~root:follower_root meta with
      | Ok b ->
          check_bool "promoted store byte-identical to oracle" true
            (String.equal
               (Serving.Artifact.to_string Serving.Artifact.Binary !oracle)
               (Serving.Artifact.to_string Serving.Artifact.Binary b))
      | Error e -> Alcotest.failf "promoted store: %s" e

(* ------------------------------------------------------------------ *)

let () =
  (* OCaml 5 forbids Unix.fork once ANY domain has ever been spawned in
     the process, so every fork-based test must run before the first
     Domain.spawn. Jobs are pinned to 1 up front (the shared pool stays
     inline, spawning nothing) and the fork-based suites are ordered
     before the daemon-in-a-domain e2e suite. *)
  Parallel.Pool.set_default_jobs 1;
  Alcotest.run "replication"
    [
      ( "wire",
        [
          Alcotest.test_case "replication request round-trips" `Quick
            test_replication_request_roundtrips;
          Alcotest.test_case "push round-trips and checksums" `Quick
            test_push_roundtrips;
          Alcotest.test_case "not_leader carries the leader address" `Quick
            test_not_leader_roundtrip;
        ] );
      ( "journal-tail",
        [
          Alcotest.test_case "cross-process appends observed" `Quick
            test_tail_cross_process_appends;
          Alcotest.test_case "torn final entry parks then completes" `Quick
            test_tail_torn_final_entry;
          Alcotest.test_case "truncation resets the tail" `Quick
            test_tail_truncation_resets;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic capped jittered schedule" `Quick
            test_backoff_deterministic;
        ] );
      ( "source",
        [
          Alcotest.test_case "catch-up planning and ack bookkeeping" `Quick
            test_source_catchup_and_acks;
        ] );
      ( "apply",
        [
          Alcotest.test_case "entry apply, stale, gap, snapshot" `Quick
            test_apply_entry_and_snapshot;
        ] );
      ( "failover",
        [
          Alcotest.test_case "SIGKILL leader, promote, byte-identity" `Quick
            test_crash_failover_bit_identity;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "catch-up, stream, bit-identity, promote" `Quick
            test_pair_catchup_stream_and_promote;
          Alcotest.test_case "trace propagation and telemetry" `Quick
            test_pair_trace_propagation_and_telemetry;
        ] );
    ]
