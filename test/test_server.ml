(* Tests for the prediction daemon: wire-protocol codec round-trips,
   malformed-frame fault injection, and end-to-end socket sessions
   proving the daemon's micro-batched answers are bit-identical to
   direct Serving.Predictor calls at any -j. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let rng = Stats.Rng.create 20130614

(* Same small fitted problem as test_serving: a nonzero-mean prior over
   a linear basis, enough structure to exercise the variance path. *)
type synth = {
  basis : Polybasis.Basis.t;
  prior : Bmf.Prior.t;
  hyper : float;
  g : Linalg.Mat.t;
  f : Linalg.Vec.t;
  truth : Linalg.Vec.t;
}

let make_synth ?(k = 40) ?(r = 25) ?(noise = 0.01) () =
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i -> if i = 0 then 3. else 1. /. float_of_int (i + 1))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
      truth
  in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (noise *. Stats.Rng.gaussian rng))
  in
  let prior = Bmf.Prior.nonzero_mean early in
  let hyper, _ = Bmf.Hyper.select ~rng ~g ~f ~prior () in
  { basis; prior; hyper; g; f; truth }

let meta =
  { Serving.Artifact.circuit = "test"; metric = "m"; scale = "quick"; seed = 7 }

let artifact_of (s : synth) =
  Serving.Artifact.of_fit ~meta ~basis:s.basis ~prior:s.prior ~hyper:s.hyper
    ~g:s.g ~f:s.f ()

let queries (s : synth) n =
  let r = Polybasis.Basis.dim s.basis in
  Linalg.Mat.of_rows (List.init n (fun _ -> Stats.Rng.gaussian_vec rng r))

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bmf-server-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists root then rm root;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists root then rm root)
    (fun () -> f root)

(* ------------------------------------------------------------------ *)
(* Wire codec: round-trips                                             *)

let frame_of s =
  match Server.Wire.peek s ~off:0 with
  | `Frame (f, next) ->
      check_int "frame consumed the whole string" (String.length s) next;
      f
  | `Need n -> Alcotest.failf "incomplete frame: need %d more bytes" n
  | `Bad msg -> Alcotest.failf "bad frame: %s" msg

let mats_equal a b = Linalg.Mat.equal a b

let roundtrip_request ?deadline_ms req =
  let s = Server.Wire.encode_request ~id:42 ?deadline_ms req in
  let f = frame_of s in
  check_int "request id echoed" 42 f.Server.Wire.frame_id;
  check_int "deadline"
    (Option.value deadline_ms ~default:0)
    f.Server.Wire.frame_deadline_ms;
  match Server.Wire.decode_request f with
  | Error e -> Alcotest.failf "decode_request failed: %s" e
  | Ok got -> got

let test_request_roundtrips () =
  let s = make_synth ~k:10 ~r:6 () in
  let points = queries s 5 in
  (match roundtrip_request Server.Wire.Ping_req with
  | Server.Wire.Ping_req -> ()
  | _ -> Alcotest.fail "ping round-trip");
  (match roundtrip_request Server.Wire.List_models_req with
  | Server.Wire.List_models_req -> ()
  | _ -> Alcotest.fail "list_models round-trip");
  (match roundtrip_request Server.Wire.Stats_req with
  | Server.Wire.Stats_req -> ()
  | _ -> Alcotest.fail "stats round-trip");
  List.iter
    (fun with_std ->
      match
        roundtrip_request ~deadline_ms:250
          (Server.Wire.Predict_req { meta; points; with_std })
      with
      | Server.Wire.Predict_req p ->
          check_bool "meta" true (p.meta = meta);
          check_bool "with_std" with_std p.with_std;
          check_bool "points bit-identical" true (mats_equal points p.points)
      | _ -> Alcotest.fail "predict round-trip")
    [ false; true ];
  let xs = queries s 4 in
  let fv = Array.init 4 (fun i -> 0.25 *. float_of_int i) in
  match roundtrip_request (Server.Wire.Update_req { meta; xs; f = fv }) with
  | Server.Wire.Update_req u ->
      check_bool "meta" true (u.meta = meta);
      check_bool "xs bit-identical" true (mats_equal xs u.xs);
      check_bool "f bit-identical" true (Array.for_all2 Float.equal fv u.f)
  | _ -> Alcotest.fail "update round-trip"

let roundtrip_response ~expect resp =
  let s = Server.Wire.encode_response ~id:7 resp in
  let f = frame_of s in
  check_int "response id echoed" 7 f.Server.Wire.frame_id;
  match Server.Wire.decode_response ~expect f with
  | Error e -> Alcotest.failf "decode_response failed: %s" e
  | Ok got -> got

let test_response_roundtrips () =
  (match roundtrip_response ~expect:Server.Wire.Ping Server.Wire.Pong with
  | Server.Wire.Pong -> ()
  | _ -> Alcotest.fail "pong round-trip");
  let means = Array.init 9 (fun i -> exp (float_of_int i /. 3.)) in
  let stds = Array.init 9 (fun i -> 1e-3 *. float_of_int (i + 1)) in
  (match
     roundtrip_response ~expect:Server.Wire.Predict
       (Server.Wire.Predicted { means; stds = None })
   with
  | Server.Wire.Predicted { means = m; stds = None } ->
      check_bool "means bit-identical" true (Array.for_all2 Float.equal means m)
  | _ -> Alcotest.fail "predicted round-trip");
  (match
     roundtrip_response ~expect:Server.Wire.Predict_var
       (Server.Wire.Predicted { means; stds = Some stds })
   with
  | Server.Wire.Predicted { means = m; stds = Some sd } ->
      check_bool "means bit-identical" true
        (Array.for_all2 Float.equal means m);
      check_bool "stds bit-identical" true (Array.for_all2 Float.equal stds sd)
  | _ -> Alcotest.fail "predicted+stds round-trip");
  (match
     roundtrip_response ~expect:Server.Wire.Update
       (Server.Wire.Updated { rev = 3; samples = 85 })
   with
  | Server.Wire.Updated { rev = 3; samples = 85 } -> ()
  | _ -> Alcotest.fail "updated round-trip");
  let info =
    {
      Server.Wire.meta;
      rev = 2;
      samples = 60;
      terms = 141;
      dim = 140;
      file = "test__m__quick__s7.bmfa";
      bytes = 12345;
    }
  in
  (match
     roundtrip_response ~expect:Server.Wire.List_models
       (Server.Wire.Models [ info ])
   with
  | Server.Wire.Models [ got ] -> check_bool "model_info" true (got = info)
  | _ -> Alcotest.fail "models round-trip");
  (match
     roundtrip_response ~expect:Server.Wire.Stats
       (Server.Wire.Stats_payload
          {
            uptime_s = 1.5;
            requests = 42.;
            recovered_updates = 3.;
            role = "follower";
            journal_seq = 17;
            shards = 4;
            metrics_json = "{\"a\":1}";
          })
   with
  | Server.Wire.Stats_payload p ->
      check_bool "uptime" true (Float.equal 1.5 p.uptime_s);
      check_bool "requests" true (Float.equal 42. p.requests);
      check_bool "recovered" true (Float.equal 3. p.recovered_updates);
      check_string "role" "follower" p.role;
      check_int "journal_seq" 17 p.journal_seq;
      check_int "shards" 4 p.shards;
      check_string "metrics json" "{\"a\":1}" p.metrics_json
  | _ -> Alcotest.fail "stats round-trip");
  List.iter
    (fun code ->
      match
        roundtrip_response ~expect:Server.Wire.Predict
          (Server.Wire.Error { code; message = "because" })
      with
      | Server.Wire.Error e ->
          check_bool "code" true (e.Server.Wire.code = code);
          check_string "message" "because" e.Server.Wire.message
      | _ -> Alcotest.fail "error round-trip")
    [
      Server.Wire.Busy;
      Server.Wire.Deadline_exceeded;
      Server.Wire.Model_not_found;
      Server.Wire.Bad_request;
      Server.Wire.Internal;
      Server.Wire.Shutting_down;
      Server.Wire.Protocol;
    ]

(* ------------------------------------------------------------------ *)
(* Wire codec: fault injection                                         *)

let test_truncated_frames_need_more () =
  let full = Server.Wire.encode_request ~id:1 Server.Wire.Ping_req in
  for cut = 0 to String.length full - 1 do
    match Server.Wire.peek (String.sub full 0 cut) ~off:0 with
    | `Need n -> check_bool "positive need" true (n > 0)
    | `Frame _ -> Alcotest.failf "truncation at %d produced a frame" cut
    | `Bad msg -> Alcotest.failf "truncation at %d misread as bad: %s" cut msg
  done;
  (* two concatenated frames parse back-to-back *)
  let s = full ^ Server.Wire.encode_request ~id:2 Server.Wire.Stats_req in
  match Server.Wire.peek s ~off:0 with
  | `Frame (f1, next) -> (
      check_int "first id" 1 f1.Server.Wire.frame_id;
      match Server.Wire.peek s ~off:next with
      | `Frame (f2, next2) ->
          check_int "second id" 2 f2.Server.Wire.frame_id;
          check_int "stream fully consumed" (String.length s) next2
      | _ -> Alcotest.fail "second frame did not parse")
  | _ -> Alcotest.fail "first frame did not parse"

let test_bad_version_rejected () =
  let full = Server.Wire.encode_request ~id:1 Server.Wire.Ping_req in
  let buf = Bytes.of_string full in
  Bytes.set buf 4 '\xee' (* the version byte, right after the u32 length *);
  match Server.Wire.peek (Bytes.to_string buf) ~off:0 with
  | `Bad _ -> ()
  | `Frame _ -> Alcotest.fail "wrong protocol version accepted"
  | `Need _ -> Alcotest.fail "wrong version misread as incomplete"

let test_oversized_frame_rejected () =
  (* an advertised length beyond max_frame_len must be refused before
     any buffering proportional to it *)
  let buf = Bytes.make 8 '\x00' in
  Bytes.set_int32_le buf 0 (Int32.of_int (Server.Wire.max_frame_len + 1));
  Bytes.set buf 4 '\x01';
  match Server.Wire.peek (Bytes.to_string buf) ~off:0 with
  | `Bad msg ->
      check_bool "mentions the length" true
        (try
           ignore (Str.search_forward (Str.regexp_string "length") msg 0);
           true
         with Not_found -> false)
  | `Frame _ | `Need _ -> Alcotest.fail "oversized frame not rejected"

let test_garbage_bodies_rejected () =
  let s = make_synth ~k:10 ~r:6 () in
  let good =
    frame_of
      (Server.Wire.encode_request ~id:9
         (Server.Wire.Predict_req
            { meta; points = queries s 3; with_std = false }))
  in
  (* a structurally valid frame whose body is cut mid-field must decode
     to Error, never raise or return junk *)
  List.iter
    (fun len ->
      let mangled =
        { good with Server.Wire.body = String.sub good.Server.Wire.body 0 len }
      in
      match Server.Wire.decode_request mangled with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "body truncated to %d decoded" len)
    [ 0; 1; 3; String.length good.Server.Wire.body / 2 ];
  let noise =
    { good with Server.Wire.body = String.make 64 '\xff' }
  in
  (match Server.Wire.decode_request noise with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage request body decoded");
  (* unknown opcode byte *)
  let unknown = { good with Server.Wire.frame_kind = 99 } in
  (match Server.Wire.decode_request unknown with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown opcode decoded");
  match
    Server.Wire.decode_response ~expect:Server.Wire.Predict
      { noise with Server.Wire.frame_kind = 0 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage response body decoded"

let test_overflow_length_rejected () =
  (* a string length field near max_int must not wrap the bounds check
     in [take] into an uncaught Invalid_argument — it decodes to Error *)
  let b = Buffer.create 8 in
  Buffer.add_int64_le b 0x3FFFFFFFFFFFFFFFL;
  let f =
    {
      Server.Wire.frame_version = 1;
      frame_kind = 2 (* predict *);
      frame_id = 1;
      frame_deadline_ms = 0;
      frame_trace = 0;
      frame_span = 0;
      body = Buffer.contents b;
    }
  in
  match Server.Wire.decode_request f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "near-max_int string length decoded"
  | exception e ->
      Alcotest.failf "decode_request raised %s" (Printexc.to_string e)

let test_negative_id_rejected () =
  (* a u64 id with the top bits set decodes to a negative OCaml int and
     could never be echoed back; peek must refuse the stream *)
  let full = Server.Wire.encode_request ~id:1 Server.Wire.Ping_req in
  let buf = Bytes.of_string full in
  Bytes.set_int64_le buf 6 (-1L) (* id field: u32 length + version + kind *);
  match Server.Wire.peek (Bytes.to_string buf) ~off:0 with
  | `Bad _ -> ()
  | `Frame _ -> Alcotest.fail "u64 id with the top bit set accepted"
  | `Need _ -> Alcotest.fail "negative id misread as incomplete"

let test_v2_trace_roundtrip () =
  (* with a trace context the frame goes out v2 and echoes it back *)
  let s =
    Server.Wire.encode_request ~id:11 ~trace:(0x1234, 0x5678)
      Server.Wire.Ping_req
  in
  let f = frame_of s in
  check_int "v2 version" 2 f.Server.Wire.frame_version;
  check_int "trace id" 0x1234 f.Server.Wire.frame_trace;
  check_int "span id" 0x5678 f.Server.Wire.frame_span;
  (match Server.Wire.decode_request f with
  | Ok Server.Wire.Ping_req -> ()
  | _ -> Alcotest.fail "v2 ping decode");
  (* without one it stays v1 with a zero context *)
  let f1 =
    frame_of (Server.Wire.encode_request ~id:12 Server.Wire.Ping_req)
  in
  check_int "v1 version" Server.Wire.min_version f1.Server.Wire.frame_version;
  check_int "no trace" 0 f1.Server.Wire.frame_trace;
  check_int "no span" 0 f1.Server.Wire.frame_span;
  (* every truncation of a v2 frame still reads as incomplete *)
  for cut = 0 to String.length s - 1 do
    match Server.Wire.peek (String.sub s 0 cut) ~off:0 with
    | `Need n -> check_bool "positive need" true (n > 0)
    | `Frame _ -> Alcotest.failf "v2 truncation at %d produced a frame" cut
    | `Bad msg ->
        Alcotest.failf "v2 truncation at %d misread as bad: %s" cut msg
  done;
  (* garbage trace words on the wire clamp to 0 — advisory data must
     never kill a stream the body of which is fine *)
  let buf = Bytes.of_string s in
  Bytes.set_int64_le buf 18 (-1L);
  Bytes.set_int64_le buf 26 Int64.min_int;
  (match Server.Wire.peek (Bytes.to_string buf) ~off:0 with
  | `Frame (f, _) ->
      check_int "garbage trace clamps to 0" 0 f.Server.Wire.frame_trace;
      check_int "garbage span clamps to 0" 0 f.Server.Wire.frame_span;
      check_int "id intact" 11 f.Server.Wire.frame_id
  | `Need _ | `Bad _ -> Alcotest.fail "clamped v2 frame refused");
  (* a frame claiming v2 but sized for a v1 header is refused *)
  let short =
    Bytes.of_string (Server.Wire.encode_request ~id:13 Server.Wire.Ping_req)
  in
  Bytes.set short 4 '\x02';
  (match Server.Wire.peek (Bytes.to_string short) ~off:0 with
  | `Bad _ -> ()
  | `Frame _ -> Alcotest.fail "undersized v2 frame accepted"
  | `Need _ -> Alcotest.fail "undersized v2 frame misread as incomplete");
  (* encode refuses a negative context outright *)
  match
    Server.Wire.encode_request ~id:14 ~trace:(-1, 0) Server.Wire.Ping_req
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative trace context encoded"

(* ------------------------------------------------------------------ *)
(* End-to-end over a Unix socket                                       *)

let with_daemon ?config ~root f =
  (* materialize the shared pool from this domain before the server
     domain spawns, so both sides agree on one initialized pool *)
  ignore (Parallel.Pool.run (Array.init 8 (fun i () -> i)));
  let sock = Filename.concat root "test.sock" in
  let t = Server.Daemon.create ?config ~root (Server.Daemon.Unix_socket sock) in
  let d = Domain.spawn (fun () -> Server.Daemon.run t) in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop t;
      Domain.join d)
    (fun () -> f t (Server.Daemon.address t))

let with_client addr f =
  let c = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)

let ok what = function
  | Ok v -> v
  | Error (e : Server.Wire.error) ->
      Alcotest.failf "%s: %s: %s" what
        (Server.Wire.error_code_name e.code)
        e.message

let e2e_bit_identical jobs () =
  Parallel.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_default_jobs 0)
  @@ fun () ->
  with_temp_root @@ fun root ->
  let s = make_synth () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  let q = queries s 64 in
  let p = Serving.Predictor.of_artifact a in
  let direct_means = Serving.Predictor.predict p q in
  let direct_m2, direct_stds = Serving.Predictor.predict_with_std p q in
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  let means = ok "predict" (Server.Client.predict c meta q) in
  check_bool "socket means bit-identical to direct predict" true
    (Array.for_all2 Float.equal direct_means means);
  let means2, stds = ok "predict_with_std" (Server.Client.predict_with_std c meta q) in
  check_bool "socket means (variance path) bit-identical" true
    (Array.for_all2 Float.equal direct_m2 means2);
  check_bool "socket stds bit-identical" true
    (Array.for_all2 Float.equal direct_stds stds);
  check_string "fingerprints agree"
    (Serving.Artifact.fingerprint direct_means)
    (Serving.Artifact.fingerprint means)

let test_e2e_bit_identical_j1 = e2e_bit_identical 1

let test_e2e_bit_identical_j8 = e2e_bit_identical 8

let test_e2e_update_matches_incremental () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:30 ~r:12 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  let k_new = 10 in
  let r = Polybasis.Basis.dim s.basis in
  let xs_new = Stats.Sampling.monte_carlo rng ~k:k_new ~r in
  let f_new =
    Array.init k_new (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs_new i))
          s.truth)
  in
  (* the reference: the same rank-1 update applied directly *)
  let upd = Serving.Incremental.of_artifact a in
  Serving.Incremental.add_batch upd ~xs:xs_new ~f:f_new;
  let reference = Serving.Incremental.to_artifact upd in
  let q = queries s 32 in
  let expected =
    Serving.Predictor.predict (Serving.Predictor.of_artifact reference) q
  in
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  let rev, samples = ok "update" (Server.Client.update c meta ~xs:xs_new ~f:f_new) in
  check_int "revision bumped" (a.rev + 1) rev;
  check_int "sample count" (30 + k_new) samples;
  (* post-update predictions come from the refreshed cache entry and
     must match the directly-updated artifact bit for bit *)
  let means = ok "predict" (Server.Client.predict c meta q) in
  check_bool "post-update predictions bit-identical" true
    (Array.for_all2 Float.equal expected means);
  (* and the update was persisted before the response *)
  match Serving.Store.load ~root meta with
  | Error e -> Alcotest.failf "store reload: %s" e
  | Ok b ->
      check_int "persisted revision" (a.rev + 1) b.rev;
      check_bool "persisted coeffs" true
        (Array.for_all2 Float.equal reference.coeffs b.coeffs)

let test_e2e_list_models_and_stats () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  ok "ping" (Server.Client.ping c);
  (match ok "list_models" (Server.Client.list_models c) with
  | [ info ] ->
      check_bool "meta" true (info.Server.Wire.meta = meta);
      check_int "dim" 8 info.Server.Wire.dim;
      check_int "samples" 20 info.Server.Wire.samples;
      check_int "terms"
        (Polybasis.Basis.size s.basis)
        info.Server.Wire.terms;
      check_bool "bytes positive" true (info.Server.Wire.bytes > 0)
  | infos -> Alcotest.failf "expected 1 model, got %d" (List.length infos));
  let st = ok "stats" (Server.Client.stats c) in
  check_bool "uptime non-negative" true (st.Server.Client.uptime_s >= 0.);
  check_bool "requests counted" true (st.Server.Client.requests >= 2.);
  check_bool "nothing recovered from a clean store" true
    (Float.equal 0. st.Server.Client.recovered_updates);
  check_string "a standalone daemon is the leader" "leader"
    st.Server.Client.role;
  check_bool "metrics json is an object" true
    (String.length st.Server.Client.metrics_json > 0
    && st.Server.Client.metrics_json.[0] = '{')

let test_e2e_backpressure_busy () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  let config =
    { Server.Daemon.default_config with Server.Daemon.queue_capacity = 0 }
  in
  with_daemon ~config ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  (* admin opcodes bypass the work queue and still answer *)
  ok "ping" (Server.Client.ping c);
  match Server.Client.predict c meta (queries s 4) with
  | Ok _ -> Alcotest.fail "full queue accepted a predict"
  | Error e ->
      check_bool "busy code" true (e.Server.Wire.code = Server.Wire.Busy)

let test_e2e_deadline_exceeded () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  let config =
    { Server.Daemon.default_config with Server.Daemon.batch_delay_s = 0.05 }
  in
  with_daemon ~config ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  match Server.Client.predict c ~deadline_ms:1 meta (queries s 4) with
  | Ok _ -> Alcotest.fail "expired deadline still served"
  | Error e ->
      check_bool "deadline code" true
        (e.Server.Wire.code = Server.Wire.Deadline_exceeded)

let test_e2e_model_not_found () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  let missing = { meta with Serving.Artifact.circuit = "nope" } in
  match Server.Client.predict c missing (queries s 4) with
  | Ok _ -> Alcotest.fail "unknown model served"
  | Error e ->
      check_bool "not-found code" true
        (e.Server.Wire.code = Server.Wire.Model_not_found)

let test_e2e_dim_mismatch_bad_request () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  let bad = Linalg.Mat.of_rows [ Stats.Rng.gaussian_vec rng 3 ] in
  match Server.Client.predict c meta bad with
  | Ok _ -> Alcotest.fail "wrong-width batch served"
  | Error e ->
      check_bool "bad-request code" true
        (e.Server.Wire.code = Server.Wire.Bad_request);
      let has sub =
        try
          ignore (Str.search_forward (Str.regexp_string sub) e.message 0);
          true
        with Not_found -> false
      in
      check_bool "names the model" true (has "test/m");
      check_bool "states expected dim" true (has "expected 8");
      check_bool "states got dim" true (has "got 3")

let test_e2e_oversized_batch_refused () =
  (* against a 1-D model a large predict_with_variance response is ~2x
     the request, so an unbounded batch could overflow max_frame_len at
     encode time; admission must refuse it and the daemon must live on *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:10 ~r:1 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  let rows = Server.Wire.max_predict_rows ~with_std:true + 1 in
  let big = Linalg.Mat.create rows 1 in
  (match Server.Client.predict_with_std c meta big with
  | Ok _ -> Alcotest.fail "oversized batch served"
  | Error e ->
      check_bool "bad-request code" true
        (e.Server.Wire.code = Server.Wire.Bad_request));
  ok "ping after refusal" (Server.Client.ping c)

let test_e2e_hostile_frame_contained () =
  (* a structurally valid frame whose body advertises a ~2^62-byte
     string: the daemon must answer with a Protocol error and hang up
     that connection only — never crash *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:10 ~r:6 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  with_daemon ~root @@ fun _t addr ->
  let path =
    match addr with
    | Server.Daemon.Unix_socket p -> p
    | Server.Daemon.Tcp _ -> Alcotest.fail "expected a unix socket"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let b = Buffer.create 32 in
      Buffer.add_int32_le b
        (Int32.of_int (Server.Wire.header_len + 8));
      (* a v1 header: the hostile part is the body, not the framing *)
      Buffer.add_uint8 b Server.Wire.min_version;
      Buffer.add_uint8 b 2 (* predict *);
      Buffer.add_int64_le b 5L (* id *);
      Buffer.add_int32_le b 0l (* deadline *);
      Buffer.add_int64_le b 0x3FFFFFFFFFFFFFFFL (* circuit "length" *);
      let payload = Buffer.contents b in
      let n = Unix.write_substring fd payload 0 (String.length payload) in
      check_int "payload written" (String.length payload) n;
      (* the daemon replies once, then closes: drain to EOF *)
      let got = Buffer.create 256 in
      let tmp = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd tmp 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes got tmp 0 n;
            drain ()
      in
      drain ();
      match Server.Wire.peek (Buffer.contents got) ~off:0 with
      | `Frame (f, _) -> (
          check_int "id echoed" 5 f.Server.Wire.frame_id;
          match Server.Wire.decode_response ~expect:Server.Wire.Predict f with
          | Ok (Server.Wire.Error e) ->
              check_bool "protocol error" true
                (e.Server.Wire.code = Server.Wire.Protocol)
          | _ -> Alcotest.fail "expected a protocol error frame")
      | `Need _ | `Bad _ ->
          Alcotest.fail "no complete response frame before close");
  (* the daemon survived: a fresh connection still answers *)
  with_client addr @@ fun c -> ok "ping after hostile frame" (Server.Client.ping c)

let test_e2e_deadline_immune_to_frozen_clock () =
  (* Regression: deadlines used Unix.gettimeofday, so real time passing
     during the batch delay expired short deadlines — and an NTP step
     forward would have mass-expired every queued request. On the
     monotonic Obs.Clock an injected frozen source means no time passes
     between admission and execution, so even a 1 ms deadline must be
     served, while ~50 ms of {e wall} time elapse in the batch delay. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  let config =
    { Server.Daemon.default_config with Server.Daemon.batch_delay_s = 0.05 }
  in
  let frozen = Obs.Clock.now_s () in
  Obs.Clock.set_source (fun () -> frozen);
  Fun.protect ~finally:(fun () -> Obs.Clock.reset_source ())
  @@ fun () ->
  with_daemon ~config ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  match Server.Client.predict c ~deadline_ms:1 meta (queries s 4) with
  | Ok means -> check_int "served, not expired" 4 (Array.length means)
  | Error e ->
      Alcotest.failf "frozen clock still expired the deadline: %s: %s"
        (Server.Wire.error_code_name e.Server.Wire.code)
        e.Server.Wire.message

let test_e2e_journal_replayed_on_create () =
  (* A journaled update whose artifact save never happened (the previous
     daemon was killed between the journal fsync and the save) must be
     replayed by Daemon.create and reported via stats. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:30 ~r:12 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  let k_new = 8 in
  let r = Polybasis.Basis.dim s.basis in
  let xs_new = Stats.Sampling.monte_carlo rng ~k:k_new ~r in
  let f_new =
    Array.init k_new (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs_new i))
          s.truth)
  in
  (* what an uncrashed daemon would have produced *)
  let upd = Serving.Incremental.of_artifact a in
  Serving.Incremental.add_batch upd ~xs:xs_new ~f:f_new;
  let reference = Serving.Incremental.to_artifact upd in
  (* simulate the crash: journal entry present, artifact still at rev 0 *)
  let j = Serving.Journal.open_ ~root () in
  Serving.Journal.append j
    { Serving.Journal.meta; base_rev = a.rev; xs = xs_new; f = f_new };
  Serving.Journal.close j;
  with_daemon ~root @@ fun t addr ->
  let report = Server.Daemon.recovery t in
  check_int "one entry replayed" 1 report.Serving.Recovery.replayed;
  check_bool "recovery clean" true (Serving.Recovery.clean report);
  (match Serving.Store.load ~root meta with
  | Error e -> Alcotest.failf "store after recovery: %s" e
  | Ok b ->
      check_int "replayed revision" (a.rev + 1) b.rev;
      check_bool "replayed coeffs match uncrashed run" true
        (Array.for_all2 Float.equal reference.coeffs b.coeffs));
  with_client addr @@ fun c ->
  let st = ok "stats" (Server.Client.stats c) in
  check_bool "stats reports the replay" true
    (Float.equal 1. st.Server.Client.recovered_updates)

(* ------------------------------------------------------------------ *)
(* Scrape endpoint (HTTP served from the same select loop)             *)

let http_get sock req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock);
      ignore (Unix.write_substring fd req 0 (String.length req));
      let b = Buffer.create 1024 in
      let tmp = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd tmp 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes b tmp 0 n;
            drain ()
      in
      drain ();
      Buffer.contents b)

let contains hay sub =
  try
    ignore (Str.search_forward (Str.regexp_string sub) hay 0);
    true
  with Not_found -> false

let test_e2e_http_endpoints () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  let hsock = Filename.concat root "http.sock" in
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.http = Some (Server.Daemon.Unix_socket hsock);
    }
  in
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Serving.Calibration.reset ())
  @@ fun () ->
  with_daemon ~config ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  ok "ping" (Server.Client.ping c);
  (* one calibrated update so the per-model calibration series exist *)
  let xs =
    let rng = Stats.Rng.create 7777 in
    Stats.Sampling.monte_carlo rng ~k:4 ~r:8
  in
  let f =
    Array.init 4 (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs i))
          s.truth)
  in
  ignore (ok "update" (Server.Client.update c meta ~xs ~f));
  let metrics = http_get hsock "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" in
  check_bool "metrics 200" true (contains metrics "HTTP/1.1 200");
  check_bool "prometheus content type" true
    (contains metrics "text/plain; version=0.0.4");
  check_bool "request counter exposed" true
    (contains metrics "bmf_server_requests_total");
  check_bool "leader lag gauge exposed" true
    (contains metrics "bmf_repl_lag_entries");
  check_bool "calibration gauges exposed" true
    (contains metrics "bmf_calibration_coverage_1s");
  check_bool "+Inf bucket exposed" true (contains metrics "le=\"+Inf\"");
  check_bool "role series exposed" true
    (contains metrics "bmf_server_role{role=\"leader\"} 1");
  let health = http_get hsock "GET /health HTTP/1.1\r\n\r\n" in
  check_bool "health 200" true (contains health "HTTP/1.1 200");
  check_bool "health names the role" true
    (contains health "\"role\":\"leader\"");
  check_bool "health reports readiness" true
    (contains health "\"ready\":true");
  check_bool "health reports queue depth" true
    (contains health "\"queue_depth\"");
  let ready = http_get hsock "GET /ready HTTP/1.1\r\n\r\n" in
  check_bool "standalone leader is ready" true (contains ready "HTTP/1.1 200");
  let missing = http_get hsock "GET /nope HTTP/1.1\r\n\r\n" in
  check_bool "404 on an unknown path" true (contains missing "HTTP/1.1 404");
  let post = http_get hsock "POST /metrics HTTP/1.1\r\n\r\n" in
  check_bool "405 on POST" true (contains post "HTTP/1.1 405");
  (* the scrape listener shares the loop: the wire socket still answers *)
  ok "ping after scrapes" (Server.Client.ping c);
  let n = ok "predict" (Server.Client.predict c meta (queries s 4)) in
  check_int "predict after scrapes" 4 (Array.length n)

(* ------------------------------------------------------------------ *)
(* Bit-identity with the full observability plane on                   *)

let test_e2e_obs_bit_identity () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:30 ~r:12 () in
  let a = artifact_of s in
  let root_on = Filename.concat root "on" in
  let root_off = Filename.concat root "off" in
  ignore (Serving.Store.save ~root:root_on a);
  ignore (Serving.Store.save ~root:root_off a);
  let k_new = 6 in
  let r = Polybasis.Basis.dim s.basis in
  let xs =
    let rng = Stats.Rng.create 4242 in
    Stats.Sampling.monte_carlo rng ~k:k_new ~r
  in
  let f =
    Array.init k_new (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs i))
          s.truth)
  in
  let q = queries s 32 in
  let run_one ~obs root =
    if obs then begin
      Obs.Trace.start ();
      Obs.Metrics.enable ();
      Obs.Events.enable ()
    end;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.stop ();
        Obs.Trace.clear ();
        Obs.Metrics.disable ();
        Obs.Events.disable ();
        Obs.Events.clear ();
        Serving.Calibration.reset ())
      (fun () ->
        with_daemon ~root @@ fun _t addr ->
        with_client addr @@ fun c ->
        ignore (ok "update" (Server.Client.update c meta ~xs ~f));
        ok "predict" (Server.Client.predict c meta q))
  in
  let on = run_one ~obs:true root_on in
  let off = run_one ~obs:false root_off in
  check_bool "means bit-identical with observability on" true
    (Array.for_all2 Float.equal on off);
  check_string "fingerprints agree"
    (Serving.Artifact.fingerprint off)
    (Serving.Artifact.fingerprint on);
  (* the persisted artifacts are byte-identical too: calibration,
     tracing and events never leak into the store *)
  let store_bytes root =
    let files =
      Sys.readdir root |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".bmfa")
      |> List.sort compare
    in
    List.map
      (fun f ->
        In_channel.with_open_bin (Filename.concat root f)
          In_channel.input_all)
      files
  in
  check_bool "store files byte-identical" true
    (store_bytes root_on = store_bytes root_off)

(* ------------------------------------------------------------------ *)
(* Loadgen percentile estimator                                        *)

let test_percentile_fixtures () =
  let checkf msg expected got =
    Alcotest.(check (float 1e-12)) msg expected got
  in
  let sorted = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "p0 is the minimum" 1. (Server.Loadgen.percentile sorted 0.);
  checkf "p50 of 5 is the median" 3. (Server.Loadgen.percentile sorted 0.5);
  checkf "p100 is the maximum" 5. (Server.Loadgen.percentile sorted 1.);
  (* linear interpolation between ranks: rank = q (n-1) *)
  checkf "p90 of 5 interpolates" 4.6 (Server.Loadgen.percentile sorted 0.9);
  checkf "p99 of 5 interpolates" 4.96 (Server.Loadgen.percentile sorted 0.99);
  checkf "p25 of 2 interpolates" 12.5
    (Server.Loadgen.percentile [| 10.; 20. |] 0.25);
  checkf "singleton" 7. (Server.Loadgen.percentile [| 7. |] 0.99);
  check_bool "empty is nan" true
    (Float.is_nan (Server.Loadgen.percentile [||] 0.5));
  (* the old estimator truncated: p99 of 10 samples returned index
     int_of_float (0.99 * 9) = 8, biasing the tail low *)
  let ten = Array.init 10 (fun i -> float_of_int (i + 1)) in
  checkf "p99 of 10 is near the max, not sorted.(8)" 9.91
    (Server.Loadgen.percentile ten 0.99);
  checkf "out-of-range q clamps" 10. (Server.Loadgen.percentile ten 1.5)

let test_e2e_graceful_shutdown () =
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  let sock = Filename.concat root "test.sock" in
  let t = Server.Daemon.create ~root (Server.Daemon.Unix_socket sock) in
  let d = Domain.spawn (fun () -> Server.Daemon.run t) in
  let addr = Server.Daemon.address t in
  with_client addr (fun c -> ok "ping" (Server.Client.ping c));
  Server.Daemon.stop t;
  Domain.join d (* run returns: drain completed without hanging *);
  check_bool "stopping reported" true (Server.Daemon.stopping t);
  check_bool "socket path released" false (Sys.file_exists sock);
  match Server.Client.connect ~retries:0 addr with
  | exception Server.Client.Transport _ -> ()
  | c ->
      Server.Client.close c;
      Alcotest.fail "connect succeeded after shutdown"

(* ------------------------------------------------------------------ *)
(* Select-timeout and HTTP idle-deadline regressions                   *)

let test_e2e_deadline_refusal_not_quantized () =
  (* Regression: the select loop used a hardcoded 0.25 s timeout floor
     and process_pending slept out the whole batch window, so a 50 ms
     deadline inside a long window was refused only when the window
     closed. The timeout is now computed from the nearest pending
     deadline, so the refusal must land near the deadline itself even
     though the window stays open for another ~5 s. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  let config =
    { Server.Daemon.default_config with Server.Daemon.batch_delay_s = 5. }
  in
  with_daemon ~config ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  let t0 = Unix.gettimeofday () in
  (match Server.Client.predict c ~deadline_ms:50 meta (queries s 4) with
  | Ok _ -> Alcotest.fail "50 ms deadline inside a 5 s window was served"
  | Error e ->
      check_bool "deadline code" true
        (e.Server.Wire.code = Server.Wire.Deadline_exceeded));
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool
    (Printf.sprintf "refused near the deadline, not a select tick (%.0f ms)"
       (1e3 *. elapsed))
    true (elapsed < 0.2)

let test_e2e_stalled_scraper_dropped () =
  (* A scrape connection that trickles half a request line must be cut
     off at the idle read deadline — it cannot hold a conn-table slot
     forever — while wire clients (which carry no read deadline) are
     untouched. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  let hsock = Filename.concat root "http.sock" in
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.http = Some (Server.Daemon.Unix_socket hsock);
      http_idle_s = 0.3;
    }
  in
  Obs.Metrics.enable ();
  Fun.protect ~finally:Obs.Metrics.disable @@ fun () ->
  with_daemon ~config ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  ok "ping" (Server.Client.ping c);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX hsock);
      ignore (Unix.write_substring fd "GET /hea" 0 8);
      let t0 = Unix.gettimeofday () in
      let tmp = Bytes.create 256 in
      let rec await_eof () =
        match Unix.read fd tmp 0 256 with
        | 0 -> ()
        | _ -> await_eof ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            ()
      in
      await_eof ();
      let waited = Unix.gettimeofday () -. t0 in
      check_bool
        (Printf.sprintf "dropped near the 0.3 s idle deadline (%.0f ms)"
           (1e3 *. waited))
        true
        (waited < 2.));
  (* the wire connection outlived the scrape deadline untouched *)
  ok "ping after the drop" (Server.Client.ping c);
  (* a well-behaved scraper is still served, and the drop was counted *)
  let metrics = http_get hsock "GET /metrics HTTP/1.1\r\n\r\n" in
  check_bool "scrape after the drop" true (contains metrics "HTTP/1.1 200");
  check_bool "idle drop counted" true
    (contains metrics "bmf_server_http_idle_drops_total 1")

(* ------------------------------------------------------------------ *)
(* Sharded serving                                                     *)

let store_bytes root =
  Sys.readdir root |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".bmfa")
  |> List.sort compare
  |> List.map (fun f ->
         In_channel.with_open_bin (Filename.concat root f)
           In_channel.input_all)

let test_sharded_bit_identical () =
  (* Four connections against a 4-shard daemon land one per worker
     domain (the acceptor deals them round-robin); every shard must
     serve bits identical to a direct in-process Predictor call. *)
  with_temp_root @@ fun root ->
  let s = make_synth () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  let q = queries s 64 in
  let p = Serving.Predictor.of_artifact a in
  let direct_means = Serving.Predictor.predict p q in
  let direct_m2, direct_stds = Serving.Predictor.predict_with_std p q in
  let config =
    { Server.Daemon.default_config with Server.Daemon.shards = 4 }
  in
  with_daemon ~config ~root @@ fun _t addr ->
  for i = 1 to 4 do
    with_client addr @@ fun c ->
    let means = ok "predict" (Server.Client.predict c meta q) in
    check_bool
      (Printf.sprintf "conn %d means bit-identical" i)
      true
      (Array.for_all2 Float.equal direct_means means);
    check_string "fingerprints agree"
      (Serving.Artifact.fingerprint direct_means)
      (Serving.Artifact.fingerprint means);
    let m2, stds =
      ok "predict_with_std" (Server.Client.predict_with_std c meta q)
    in
    check_bool
      (Printf.sprintf "conn %d variance-path means bit-identical" i)
      true
      (Array.for_all2 Float.equal direct_m2 m2);
    check_bool
      (Printf.sprintf "conn %d stds bit-identical" i)
      true
      (Array.for_all2 Float.equal direct_stds stds)
  done

let test_sharded_mixed_load_identity () =
  (* The same deterministic interleaving of updates and predicts,
     replayed against a 1-shard and a 4-shard daemon over identical
     seed stores, must produce identical response streams and leave
     byte-identical artifacts on disk. Updates are issued from a single
     connection so the journal commit order is the same at any shard
     count. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:30 ~r:12 () in
  let a = artifact_of s in
  let root1 = Filename.concat root "s1" in
  let root4 = Filename.concat root "s4" in
  ignore (Serving.Store.save ~root:root1 a);
  ignore (Serving.Store.save ~root:root4 a);
  let r = Polybasis.Basis.dim s.basis in
  let mix_rng = Stats.Rng.create 9090 in
  let steps =
    List.init 12 (fun i ->
        let k = 2 + (i mod 3) in
        let xs = Stats.Sampling.monte_carlo mix_rng ~k ~r in
        let f =
          Array.init k (fun j ->
              Linalg.Vec.dot
                (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs j))
                s.truth)
        in
        let q =
          Linalg.Mat.of_rows
            (List.init 8 (fun _ -> Stats.Rng.gaussian_vec mix_rng r))
        in
        (xs, f, q))
  in
  let run_root ~shards root =
    let config = { Server.Daemon.default_config with Server.Daemon.shards } in
    with_daemon ~config ~root @@ fun _t addr ->
    with_client addr @@ fun u ->
    with_client addr @@ fun p1 ->
    with_client addr @@ fun p2 ->
    with_client addr @@ fun p3 ->
    let preds = [| p1; p2; p3 |] in
    List.concat
      (List.mapi
         (fun i (xs, f, q) ->
           ignore (ok "update" (Server.Client.update u meta ~xs ~f));
           let c = preds.(i mod 3) in
           Array.to_list (ok "predict" (Server.Client.predict c meta q)))
         steps)
  in
  let m1 = run_root ~shards:1 root1 in
  let m4 = run_root ~shards:4 root4 in
  check_bool "mixed-load means identical at shards 1 vs 4" true
    (List.for_all2 Float.equal m1 m4);
  check_string "fingerprints agree"
    (Serving.Artifact.fingerprint (Array.of_list m1))
    (Serving.Artifact.fingerprint (Array.of_list m4));
  check_bool "store files byte-identical at shards 1 vs 4" true
    (store_bytes root1 = store_bytes root4)

let test_sharded_drain_in_flight () =
  (* Stop a 3-shard daemon while every shard holds an in-flight predict
     inside an open batch window: each request must still get a
     response frame (served, or refused shutting_down if it had not
     been admitted yet), every connection must be flushed and closed,
     and run must return. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:20 ~r:8 () in
  ignore (Serving.Store.save ~root (artifact_of s));
  ignore (Parallel.Pool.run (Array.init 8 (fun i () -> i)));
  let sock = Filename.concat root "test.sock" in
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.shards = 3;
      batch_delay_s = 0.2;
    }
  in
  let t = Server.Daemon.create ~config ~root (Server.Daemon.Unix_socket sock) in
  let d = Domain.spawn (fun () -> Server.Daemon.run t) in
  let fds =
    List.init 3 (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        fd)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        fds;
      Server.Daemon.stop t)
    (fun () ->
      let q = queries s 8 in
      List.iteri
        (fun i fd ->
          let payload =
            Server.Wire.encode_request ~id:(100 + i)
              (Server.Wire.Predict_req { meta; points = q; with_std = false })
          in
          let n =
            Unix.write_substring fd payload 0 (String.length payload)
          in
          check_int "request written" (String.length payload) n)
        fds;
      (* let the handoff and admissions land inside the 0.2 s window *)
      Unix.sleepf 0.05;
      Server.Daemon.stop t;
      Domain.join d (* run returned: every shard quiesced *);
      List.iteri
        (fun i fd ->
          let got = Buffer.create 4096 in
          let tmp = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd tmp 0 4096 with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes got tmp 0 n;
                drain ()
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
          in
          drain ();
          match Server.Wire.peek (Buffer.contents got) ~off:0 with
          | `Frame (f, _) -> (
              check_int "request id echoed" (100 + i) f.Server.Wire.frame_id;
              match
                Server.Wire.decode_response ~expect:Server.Wire.Predict f
              with
              | Ok (Server.Wire.Predicted { means; _ }) ->
                  check_int "in-flight predict served through the drain" 8
                    (Array.length means)
              | Ok (Server.Wire.Error e) ->
                  check_bool "unadmitted work refused as shutting_down" true
                    (e.Server.Wire.code = Server.Wire.Shutting_down)
              | _ -> Alcotest.failf "conn %d: unexpected response" i)
          | `Need _ | `Bad _ ->
              Alcotest.failf "conn %d: no response frame before close" i)
        fds)

let test_sharded_update_snapshot_race () =
  (* Snapshot publication happens before the update's ack is queued: a
     client that saw the ack and then predicts from a different shard
     must observe exactly the persisted revision — never the old
     snapshot. Exercised across repeated swap cycles. *)
  with_temp_root @@ fun root ->
  let s = make_synth ~k:30 ~r:12 () in
  let a = artifact_of s in
  ignore (Serving.Store.save ~root a);
  let config =
    { Server.Daemon.default_config with Server.Daemon.shards = 2 }
  in
  let r = Polybasis.Basis.dim s.basis in
  let race_rng = Stats.Rng.create 5151 in
  let q = queries s 16 in
  with_daemon ~config ~root @@ fun _t addr ->
  with_client addr @@ fun cu ->
  (* second connection lands on the other shard *)
  with_client addr @@ fun cp ->
  for round = 1 to 8 do
    let k = 3 in
    let xs = Stats.Sampling.monte_carlo race_rng ~k ~r in
    let f =
      Array.init k (fun j ->
          Linalg.Vec.dot
            (Polybasis.Basis.eval_row s.basis (Linalg.Mat.row xs j))
            s.truth)
    in
    let rev, _ = ok "update" (Server.Client.update cu meta ~xs ~f) in
    check_int "revision advances" (a.rev + round) rev;
    let means = ok "predict" (Server.Client.predict cp meta q) in
    let direct =
      match Serving.Store.load ~root meta with
      | Error e -> Alcotest.failf "store reload: %s" e
      | Ok b -> Serving.Predictor.predict (Serving.Predictor.of_artifact b) q
    in
    check_bool
      (Printf.sprintf "round %d: post-ack predict sees the new revision"
         round)
      true
      (Array.for_all2 Float.equal direct means)
  done

(* ------------------------------------------------------------------ *)
(* Ensemble serving: wire codec, bit-identity against the offline BMA
   reference at any shard/jobs count, evidence riding the update path,
   and live pickup of out-of-band ensemble definitions.               *)

let meta2 = { meta with Serving.Artifact.seed = 8 }

let test_ensemble_wire_roundtrips () =
  let s = make_synth ~k:10 ~r:6 () in
  let points = queries s 5 in
  (match
     roundtrip_request ~deadline_ms:100
       (Server.Wire.Predict_ensemble_req { name = "blue"; points })
   with
  | Server.Wire.Predict_ensemble_req p ->
      check_string "name" "blue" p.name;
      check_bool "points bit-identical" true (mats_equal points p.points)
  | _ -> Alcotest.fail "predict_ensemble round-trip");
  (match
     roundtrip_request (Server.Wire.Ensemble_stats_req { name = "green" })
   with
  | Server.Wire.Ensemble_stats_req { name = "green" } -> ()
  | _ -> Alcotest.fail "ensemble_stats round-trip");
  (* the empty name means "every ensemble" for stats... *)
  (match roundtrip_request (Server.Wire.Ensemble_stats_req { name = "" }) with
  | Server.Wire.Ensemble_stats_req { name = "" } -> ()
  | _ -> Alcotest.fail "ensemble_stats broadcast round-trip");
  (* ...but is a framing error for predict *)
  let bad =
    frame_of
      (Server.Wire.encode_request ~id:3
         (Server.Wire.Predict_ensemble_req { name = ""; points }))
  in
  (match Server.Wire.decode_request bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty ensemble name accepted");
  let v k = Array.init 7 (fun i -> ldexp (float_of_int ((k * 7) + i + 1)) (-3)) in
  (match
     roundtrip_response ~expect:Server.Wire.Predict_ensemble
       (Server.Wire.Ensemble_predicted
          { means = v 0; within = v 1; between = v 2 })
   with
  | Server.Wire.Ensemble_predicted { means; within; between } ->
      check_bool "means bit-identical" true
        (Array.for_all2 Float.equal (v 0) means);
      check_bool "within bit-identical" true
        (Array.for_all2 Float.equal (v 1) within);
      check_bool "between bit-identical" true
        (Array.for_all2 Float.equal (v 2) between)
  | _ -> Alcotest.fail "ensemble_predicted round-trip");
  match
    roundtrip_response ~expect:Server.Wire.Ensemble_stats
      (Server.Wire.Ensemble_stats_payload { json = "[{\"w\":0.5}]" })
  with
  | Server.Wire.Ensemble_stats_payload { json } ->
      check_string "json payload" "[{\"w\":0.5}]" json
  | _ -> Alcotest.fail "ensemble_stats payload round-trip"

(* Two fitted members over the same linear basis plus a persisted
   two-member ensemble named "pair"; returns the first synth (for
   queries and update data) and the offline BMA reference closure. *)
let ensemble_setup root =
  let s1 = make_synth ~k:30 ~r:10 () in
  let s2 = make_synth ~k:30 ~r:10 () in
  let a1 = artifact_of s1 in
  let a2 =
    Serving.Artifact.of_fit ~meta:meta2 ~basis:s2.basis ~prior:s2.prior
      ~hyper:s2.hyper ~g:s2.g ~f:s2.f ()
  in
  ignore (Serving.Store.save ~root a1);
  ignore (Serving.Store.save ~root a2);
  let st = Ensemble.State.create "pair" in
  let st = Result.get_ok (Ensemble.State.add st meta) in
  let st = Result.get_ok (Ensemble.State.add st meta2) in
  ignore (Ensemble.Store.save ~root st);
  let reference st q =
    Ensemble.Predictor.predict st
      [|
        Some (Serving.Predictor.of_artifact a1);
        Some (Serving.Predictor.of_artifact a2);
      |]
      q
  in
  (s1, st, reference)

let ensemble_e2e ~shards ~jobs () =
  Parallel.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_default_jobs 0)
  @@ fun () ->
  with_temp_root @@ fun root ->
  let s1, st, reference = ensemble_setup root in
  let q = queries s1 64 in
  let dm, dw, db = reference st q in
  let config = { Server.Daemon.default_config with Server.Daemon.shards } in
  with_daemon ~config ~root @@ fun _t addr ->
  (* one connection per shard: the acceptor deals them round-robin, so
     every worker domain must reproduce the offline fold bit-for-bit *)
  for conn = 1 to Stdlib.max 2 shards do
    with_client addr @@ fun c ->
    let m, w, b =
      ok "predict_ensemble" (Server.Client.predict_ensemble c ~name:"pair" q)
    in
    check_bool
      (Printf.sprintf "conn %d BMA means bit-identical" conn)
      true
      (Array.for_all2 Float.equal dm m);
    check_bool
      (Printf.sprintf "conn %d within-variance bit-identical" conn)
      true
      (Array.for_all2 Float.equal dw w);
    check_bool
      (Printf.sprintf "conn %d between-variance bit-identical" conn)
      true
      (Array.for_all2 Float.equal db b);
    check_string "mean fingerprints agree"
      (Serving.Artifact.fingerprint dm)
      (Serving.Artifact.fingerprint m)
  done

let test_ensemble_e2e_s1_j1 = ensemble_e2e ~shards:1 ~jobs:1

let test_ensemble_e2e_s1_j8 = ensemble_e2e ~shards:1 ~jobs:8

let test_ensemble_e2e_s4_j1 = ensemble_e2e ~shards:4 ~jobs:1

let test_ensemble_e2e_s4_j8 = ensemble_e2e ~shards:4 ~jobs:8

let members_of_stats json =
  match Serving.Json.of_string json with
  | Error e -> Alcotest.failf "stats payload unparsable: %s" e
  | Ok doc -> (
      match Serving.Json.member "members" doc with
      | Some (Serving.Json.Arr l) -> l
      | _ -> Alcotest.failf "no members array in %s" json)

let member_num key m =
  match Serving.Json.member key m with
  | Some (Serving.Json.Num v) -> v
  | _ -> Alcotest.failf "member lacks %s" key

let test_e2e_ensemble_evidence_moves () =
  with_temp_root @@ fun root ->
  let s1, st, reference = ensemble_setup root in
  let q = queries s1 16 in
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  (* broadcast stats is a JSON array; named is one object *)
  let all = ok "ensemble_stats" (Server.Client.ensemble_stats c ()) in
  check_bool "broadcast payload is an array" true (all.[0] = '[');
  let named =
    ok "ensemble_stats" (Server.Client.ensemble_stats c ~name:"pair" ())
  in
  List.iter
    (fun m -> check_bool "no evidence yet" true (member_num "points" m = 0.))
    (members_of_stats named);
  (* an update to member 1 scores BOTH members on the held-out batch
     with their pre-update predictors, then commits the evidence *)
  let k_new = 9 in
  let r = Polybasis.Basis.dim s1.basis in
  let xs = Stats.Sampling.monte_carlo rng ~k:k_new ~r in
  let f =
    Array.init k_new (fun i ->
        Linalg.Vec.dot
          (Polybasis.Basis.eval_row s1.basis (Linalg.Mat.row xs i))
          s1.truth)
  in
  (* the reference: phase-1 scoring against the same pre-update state *)
  let predictor_of m =
    match Serving.Store.load ~root m with
    | Ok a -> Some (Serving.Predictor.of_artifact a)
    | Error _ -> None
  in
  let expected = Ensemble.Manager.score ~predictor_of st ~xs ~f in
  ignore (ok "update" (Server.Client.update c meta ~xs ~f));
  let after =
    members_of_stats
      (ok "ensemble_stats" (Server.Client.ensemble_stats c ~name:"pair" ()))
  in
  List.iteri
    (fun i m ->
      check_bool
        (Printf.sprintf "member %d scored the whole batch" i)
        true
        (member_num "points" m = float_of_int k_new);
      check_bool
        (Printf.sprintf "member %d evidence matches offline scoring" i)
        true
        (Float.equal
           expected.Ensemble.State.members.(i).Ensemble.State.log_ev
           (member_num "log_evidence" m)))
    after;
  (* the advanced evidence was persisted, survives a daemon restart and
     still drives a bit-identical BMA answer *)
  (match Ensemble.Store.load ~root "pair" with
  | Error e -> Alcotest.failf "bmfe reload: %s" e
  | Ok disk -> check_bool "persisted state advanced" true (disk = expected));
  (* the post-update reference predicts with the REFRESHED member
     artifacts (member 1 advanced a revision) under the advanced
     weights *)
  ignore reference;
  let dm, _, _ =
    Ensemble.Predictor.predict expected
      [| predictor_of meta; predictor_of meta2 |]
      q
  in
  let m, _, _ =
    ok "predict_ensemble" (Server.Client.predict_ensemble c ~name:"pair" q)
  in
  check_bool "post-evidence BMA means bit-identical" true
    (Array.for_all2 Float.equal dm m);
  (* unknown ensembles refuse cleanly *)
  (match Server.Client.predict_ensemble c ~name:"ghost" q with
  | Error e ->
      check_bool "unknown ensemble is model_not_found" true
        (e.Server.Wire.code = Server.Wire.Model_not_found)
  | Ok _ -> Alcotest.fail "unknown ensemble served");
  (* an out-of-band create (the canary-registration CLI against the
     live store) is picked up by the next stats call *)
  let solo = Result.get_ok (Ensemble.State.add (Ensemble.State.create "solo") meta) in
  ignore (Ensemble.Store.save ~root solo);
  let refreshed = ok "ensemble_stats" (Server.Client.ensemble_stats c ()) in
  check_bool "live pickup of a new .bmfe" true
    (let re = Str.regexp_string "\"solo\"" in
     try
       ignore (Str.search_forward re refreshed 0);
       true
     with Not_found -> false);
  let m2, _, _ =
    ok "predict_ensemble (picked up)"
      (Server.Client.predict_ensemble c ~name:"solo" q)
  in
  check_int "new ensemble serves" 16 (Array.length m2)

let test_e2e_ensemble_oversized_refused () =
  with_temp_root @@ fun root ->
  let _s1, _st, _reference = ensemble_setup root in
  with_daemon ~root @@ fun _t addr ->
  with_client addr @@ fun c ->
  let rows = Server.Wire.max_ensemble_rows + 1 in
  let q = Linalg.Mat.init rows 1 (fun _ _ -> 0.) in
  match Server.Client.predict_ensemble c ~name:"pair" q with
  | Error e ->
      check_bool "oversized ensemble batch refused as bad_request" true
        (e.Server.Wire.code = Server.Wire.Bad_request)
  | Ok _ -> Alcotest.fail "oversized ensemble batch served"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trips" `Quick
            test_request_roundtrips;
          Alcotest.test_case "response round-trips" `Quick
            test_response_roundtrips;
          Alcotest.test_case "truncated frames" `Quick
            test_truncated_frames_need_more;
          Alcotest.test_case "bad version" `Quick test_bad_version_rejected;
          Alcotest.test_case "oversized frame" `Quick
            test_oversized_frame_rejected;
          Alcotest.test_case "garbage bodies" `Quick
            test_garbage_bodies_rejected;
          Alcotest.test_case "overflow length" `Quick
            test_overflow_length_rejected;
          Alcotest.test_case "negative id" `Quick test_negative_id_rejected;
          Alcotest.test_case "v2 trace context" `Quick
            test_v2_trace_roundtrip;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "bit-identical at -j 1" `Quick
            test_e2e_bit_identical_j1;
          Alcotest.test_case "bit-identical at -j 8" `Quick
            test_e2e_bit_identical_j8;
          Alcotest.test_case "update = incremental" `Quick
            test_e2e_update_matches_incremental;
          Alcotest.test_case "list_models and stats" `Quick
            test_e2e_list_models_and_stats;
          Alcotest.test_case "backpressure busy" `Quick
            test_e2e_backpressure_busy;
          Alcotest.test_case "deadline exceeded" `Quick
            test_e2e_deadline_exceeded;
          Alcotest.test_case "deadline refusal not quantized" `Quick
            test_e2e_deadline_refusal_not_quantized;
          Alcotest.test_case "model not found" `Quick test_e2e_model_not_found;
          Alcotest.test_case "dim mismatch" `Quick
            test_e2e_dim_mismatch_bad_request;
          Alcotest.test_case "oversized batch refused" `Quick
            test_e2e_oversized_batch_refused;
          Alcotest.test_case "hostile frame contained" `Quick
            test_e2e_hostile_frame_contained;
          Alcotest.test_case "graceful shutdown" `Quick
            test_e2e_graceful_shutdown;
        ] );
      ( "observability",
        [
          Alcotest.test_case "http scrape endpoints" `Quick
            test_e2e_http_endpoints;
          Alcotest.test_case "stalled scraper dropped" `Quick
            test_e2e_stalled_scraper_dropped;
          Alcotest.test_case "bit-identical with obs on" `Quick
            test_e2e_obs_bit_identity;
        ] );
      ( "durability",
        [
          Alcotest.test_case "deadline immune to frozen clock" `Quick
            test_e2e_deadline_immune_to_frozen_clock;
          Alcotest.test_case "journal replayed on create" `Quick
            test_e2e_journal_replayed_on_create;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "bit-identical on every shard" `Quick
            test_sharded_bit_identical;
          Alcotest.test_case "mixed load identical at shards 1 vs 4" `Quick
            test_sharded_mixed_load_identity;
          Alcotest.test_case "drain with in-flight work on every shard"
            `Quick test_sharded_drain_in_flight;
          Alcotest.test_case "update/snapshot-swap race" `Quick
            test_sharded_update_snapshot_race;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "wire round-trips" `Quick
            test_ensemble_wire_roundtrips;
          Alcotest.test_case "BMA bit-identical shards 1 -j 1" `Quick
            test_ensemble_e2e_s1_j1;
          Alcotest.test_case "BMA bit-identical shards 1 -j 8" `Quick
            test_ensemble_e2e_s1_j8;
          Alcotest.test_case "BMA bit-identical shards 4 -j 1" `Quick
            test_ensemble_e2e_s4_j1;
          Alcotest.test_case "BMA bit-identical shards 4 -j 8" `Quick
            test_ensemble_e2e_s4_j8;
          Alcotest.test_case "evidence rides the update path" `Quick
            test_e2e_ensemble_evidence_moves;
          Alcotest.test_case "oversized batch refused" `Quick
            test_e2e_ensemble_oversized_refused;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "percentile fixtures" `Quick
            test_percentile_fixtures;
        ] );
    ]
