(* Unit and property tests for the statistics layer. *)

open Stats

let check_float = Alcotest.(check (float 1e-9))

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b);
  (* advancing one does not advance the other *)
  ignore (Rng.int64 a);
  ignore (Rng.int64 a);
  let x = Rng.int64 a and y = Rng.int64 b in
  check_bool "independent state" true (x <> y)

let test_rng_split_streams () =
  let parent = Rng.create 3 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  check_bool "children differ" true (Rng.int64 c1 <> Rng.int64 c2)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let u = Rng.float rng in
    check_bool "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_rng_int_range_and_mean () =
  let rng = Rng.create 11 in
  let n = 10 in
  let counts = Array.make n 0 in
  let draws = 20000 in
  for _ = 1 to draws do
    let v = Rng.int rng n in
    check_bool "in range" true (v >= 0 && v < n);
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      (* each bucket within 5 sigma of uniform *)
      let expected = float_of_int draws /. float_of_int n in
      let sigma = sqrt (expected *. (1. -. (1. /. float_of_int n))) in
      check_bool "uniform-ish" true
        (Float.abs (float_of_int c -. expected) < 5. *. sigma))
    counts

let test_rng_int_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 100000 in
  let v = Rng.gaussian_vec rng n in
  check_bool "mean" true (Float.abs (Describe.mean v) < 0.02);
  check_bool "std" true (Float.abs (Describe.std v -. 1.) < 0.02);
  let s = Describe.summarize v in
  check_bool "skewness" true (Float.abs s.skewness < 0.05);
  check_bool "kurtosis" true (Float.abs s.kurtosis_excess < 0.1)

let test_rng_permutation () =
  let rng = Rng.create 17 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check_bool "is a permutation" true
    (Array.to_list sorted = List.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Special *)

let test_erf_known_values () =
  Alcotest.(check (float 1e-10)) "erf 0" 0. (Special.erf 0.);
  Alcotest.(check (float 1e-10)) "erf 1" 0.8427007929497149 (Special.erf 1.);
  Alcotest.(check (float 1e-10)) "erf -1" (-0.8427007929497149) (Special.erf (-1.));
  Alcotest.(check (float 1e-10)) "erf 2" 0.9953222650189527 (Special.erf 2.);
  Alcotest.(check (float 1e-12)) "erf inf" 1. (Special.erf 10.)

let test_erfc_tail () =
  (* exact tail values: erfc(3) and erfc(5) *)
  Alcotest.(check (float 1e-14)) "erfc 3" 2.209049699858544e-05 (Special.erfc 3.);
  let r5 = Special.erfc 5. /. 1.5374597944280347e-12 in
  check_bool "erfc 5 relative" true (Float.abs (r5 -. 1.) < 1e-8);
  Alcotest.(check (float 1e-12)) "erfc(-x) = 2 - erfc(x)" (2. -. Special.erfc 1.5)
    (Special.erfc (-1.5))

let test_norm_cdf_symmetry () =
  Alcotest.(check (float 1e-12)) "cdf 0" 0.5 (Special.norm_cdf 0.);
  for i = 1 to 8 do
    let x = 0.5 *. float_of_int i in
    Alcotest.(check (float 1e-12))
      "symmetry" 1.
      (Special.norm_cdf x +. Special.norm_cdf (-.x))
  done

let test_norm_ppf_inverse () =
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) "cdf(ppf(p)) = p" p
        (Special.norm_cdf (Special.norm_ppf p)))
    [ 1e-10; 1e-6; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. -. 1e-6 ]

let test_norm_ppf_known () =
  Alcotest.(check (float 1e-8)) "z 0.975" 1.959963984540054
    (Special.norm_ppf 0.975);
  check_bool "endpoints" true
    (Special.norm_ppf 0. = neg_infinity && Special.norm_ppf 1. = infinity)

let test_log_gamma () =
  Alcotest.(check (float 1e-10)) "gamma(1)" 0. (Special.log_gamma 1.);
  Alcotest.(check (float 1e-10)) "gamma(5) = 24" (log 24.) (Special.log_gamma 5.);
  Alcotest.(check (float 1e-10)) "gamma(1/2) = sqrt pi"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5);
  (* recurrence gamma(x+1) = x gamma(x) *)
  let x = 3.7 in
  Alcotest.(check (float 1e-10)) "recurrence"
    (Special.log_gamma x +. log x)
    (Special.log_gamma (x +. 1.))

(* ------------------------------------------------------------------ *)
(* Distribution *)

let test_distribution_gaussian () =
  let d = Distribution.gaussian ~mu:2. ~sigma:3. in
  check_float "mean" 2. (Distribution.mean d);
  check_float "std" 3. (Distribution.std d);
  Alcotest.(check (float 1e-12)) "cdf at mean" 0.5 (Distribution.cdf d 2.);
  Alcotest.(check (float 1e-8)) "quantile inverse" 4.2
    (Distribution.quantile d (Distribution.cdf d 4.2));
  Alcotest.(check (float 1e-12)) "pdf normalization point"
    (Special.norm_pdf 0. /. 3.)
    (Distribution.pdf d 2.)

let test_distribution_lognormal () =
  let d = Distribution.lognormal ~mu:0. ~sigma:0.5 in
  check_float "mean" (exp 0.125) (Distribution.mean d);
  check_float "pdf at nonpositive" 0. (Distribution.pdf d (-1.));
  check_float "cdf at nonpositive" 0. (Distribution.cdf d 0.);
  let rng = Rng.create 3 in
  let v = Array.init 50000 (fun _ -> Distribution.sample d rng) in
  check_bool "empirical mean" true
    (Float.abs (Describe.mean v -. Distribution.mean d) < 0.02);
  check_bool "all positive" true (Array.for_all (fun x -> x > 0.) v)

let test_distribution_uniform () =
  let d = Distribution.uniform ~lo:(-1.) ~hi:3. in
  check_float "mean" 1. (Distribution.mean d);
  check_float "variance" (16. /. 12.) (Distribution.variance d);
  check_float "cdf mid" 0.5 (Distribution.cdf d 1.);
  check_float "quantile" (-1. +. (4. *. 0.25)) (Distribution.quantile d 0.25)

let test_distribution_validation () =
  Alcotest.check_raises "sigma"
    (Invalid_argument "Distribution.gaussian: sigma must be > 0") (fun () ->
      ignore (Distribution.gaussian ~mu:0. ~sigma:0.));
  Alcotest.check_raises "bounds"
    (Invalid_argument "Distribution.uniform: need lo < hi") (fun () ->
      ignore (Distribution.uniform ~lo:1. ~hi:1.))

let test_log_pdf_consistency () =
  let d = Distribution.gaussian ~mu:1. ~sigma:2. in
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-10)) "log pdf" (log (Distribution.pdf d x))
        (Distribution.log_pdf d x))
    [ -3.; 0.; 1.; 4. ]


let test_rng_uniform_bounds () =
  let rng = Rng.create 51 in
  for _ = 1 to 500 do
    let u = Rng.uniform rng ~lo:(-2.) ~hi:5. in
    check_bool "bounds" true (u >= -2. && u < 5.)
  done

let test_rng_bool_balance () =
  let rng = Rng.create 53 in
  let n = 20000 in
  let trues = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  let p = float_of_int !trues /. float_of_int n in
  check_bool "near half" true (Float.abs (p -. 0.5) < 0.02)

let test_norm_pdf_integrates () =
  (* trapezoid over [-8, 8] with fine steps *)
  let n = 4000 in
  let h = 16. /. float_of_int n in
  let acc = ref 0. in
  for i = 0 to n do
    let x = -8. +. (h *. float_of_int i) in
    let w = if i = 0 || i = n then 0.5 else 1. in
    acc := !acc +. (w *. Special.norm_pdf x)
  done;
  Alcotest.(check (float 1e-8)) "integral 1" 1. (!acc *. h)

let test_erf_erfc_complement () =
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-12)) "erf + erfc = 1" 1.
        (Special.erf x +. Special.erfc x))
    [ -4.; -1.; 0.; 0.5; 2.; 6. ]


let test_rng_xoshiro_spec () =
  (* golden values pin the generator: seeds expand via splitmix64, so the
     stream is a pure function of the integer seed across versions *)
  let a = Rng.create 0 and b = Rng.create 0 in
  let first = Rng.int64 a in
  Alcotest.(check int64) "self consistent" first (Rng.int64 b);
  (* a known statistical spec: two different seeds should not share their
     first 8 outputs *)
  let c = Rng.create 1 in
  let collisions = ref 0 in
  for _ = 1 to 8 do
    if Rng.int64 b = Rng.int64 c then incr collisions
  done;
  check_bool "streams disjoint" true (!collisions = 0)

(* ------------------------------------------------------------------ *)
(* Sampling *)

let test_lhs_stratification () =
  (* each column of an LHS sample has exactly one point per stratum *)
  let rng = Rng.create 23 in
  let k = 64 in
  let m = Sampling.latin_hypercube rng ~k ~r:3 in
  for j = 0 to 2 do
    let col = Linalg.Mat.col m j in
    let ranks = Array.map Special.norm_cdf col in
    Array.sort Float.compare ranks;
    Array.iteri
      (fun i u ->
        let lo = float_of_int i /. float_of_int k in
        let hi = float_of_int (i + 1) /. float_of_int k in
        check_bool "stratified" true (u >= lo -. 1e-9 && u <= hi +. 1e-9))
      ranks
  done

let test_mc_dims () =
  let rng = Rng.create 29 in
  let m = Sampling.monte_carlo rng ~k:5 ~r:7 in
  Alcotest.(check (pair int int)) "dims" (5, 7) (Linalg.Mat.dims m)


let test_halton_primes () =
  Alcotest.(check (array int)) "first primes" [| 2; 3; 5; 7; 11; 13 |]
    (Sampling.nth_primes 6);
  Alcotest.(check int) "many primes" 500 (Array.length (Sampling.nth_primes 500))

let test_halton_low_discrepancy () =
  (* the Halton estimate of E[X^2] = 1 converges faster than plain MC at
     matched sample counts in low dimension; just check closeness *)
  let rng = Rng.create 41 in
  let k = 512 in
  let m = Sampling.halton rng ~k ~r:2 in
  let col = Linalg.Mat.col m 0 in
  let second_moment =
    Array.fold_left (fun acc x -> acc +. (x *. x)) 0. col /. float_of_int k
  in
  check_bool "second moment" true (Float.abs (second_moment -. 1.) < 0.05);
  check_bool "mean" true (Float.abs (Describe.mean col) < 0.05)

let test_halton_deterministic_given_rng () =
  let draw () = Sampling.halton (Rng.create 3) ~k:8 ~r:3 in
  let a = draw () and b = draw () in
  check_bool "same shift, same points" true (Linalg.Mat.approx_equal a b)

let test_scheme_dispatch () =
  let rng = Rng.create 31 in
  let m = Sampling.draw Sampling.Latin_hypercube rng ~k:4 ~r:2 in
  Alcotest.(check (pair int int)) "dims" (4, 2) (Linalg.Mat.dims m);
  Alcotest.(check string) "names" "monte-carlo"
    (Sampling.scheme_name Sampling.Monte_carlo)

(* ------------------------------------------------------------------ *)
(* Describe *)

let test_describe_quantiles () =
  let v = [| 4.; 1.; 3.; 2.; 5. |] in
  check_float "median" 3. (Describe.quantile v 0.5);
  check_float "min" 1. (Describe.quantile v 0.);
  check_float "max" 5. (Describe.quantile v 1.);
  check_float "interp" 1.5 (Describe.quantile v 0.125)

let test_describe_variance () =
  let v = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Describe.variance v);
  check_float "single point" 0. (Describe.variance [| 3. |])

let test_describe_summary () =
  let v = [| 1.; 2.; 3.; 4.; 100. |] in
  let s = Describe.summarize v in
  check_int "count" 5 s.count;
  check_float "mean" 22. s.mean;
  check_float "median" 3. s.median;
  check_bool "skewed right" true (s.skewness > 1.)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_counts () =
  let h = Histogram.build ~bins:4 ~range:(0., 4.) [| 0.5; 1.5; 1.7; 2.5; 3.5; 3.9 |] in
  Alcotest.(check (array int)) "counts" [| 1; 2; 1; 2 |] h.counts;
  check_int "total" 6 h.Histogram.total

let test_histogram_overflow () =
  let h = Histogram.build ~bins:2 ~range:(0., 1.) [| -1.; 0.5; 2.; 3. |] in
  check_int "under" 1 h.Histogram.underflow;
  check_int "over" 2 h.Histogram.overflow

let test_histogram_density_integrates () =
  let rng = Rng.create 37 in
  let v = Rng.gaussian_vec rng 5000 in
  let h = Histogram.build ~bins:20 v in
  let d = Histogram.density h in
  let width = (h.Histogram.hi -. h.Histogram.lo) /. 20. in
  let integral = Array.fold_left (fun acc x -> acc +. (x *. width)) 0. d in
  Alcotest.(check (float 1e-9)) "integrates to 1" 1. integral

let test_histogram_max_inside () =
  (* the maximum datum must land in the last bin, not overflow *)
  let h = Histogram.build ~bins:3 [| 1.; 2.; 3. |] in
  check_int "no overflow" 0 h.Histogram.overflow;
  check_int "total binned" 3 (Array.fold_left ( + ) 0 h.counts)

let test_histogram_edges_centers () =
  let h = Histogram.build ~bins:2 ~range:(0., 2.) [| 0.5; 1.5 |] in
  Alcotest.(check (array (float 1e-12))) "edges" [| 0.; 1.; 2. |]
    (Histogram.bin_edges h);
  Alcotest.(check (array (float 1e-12))) "centers" [| 0.5; 1.5 |]
    (Histogram.bin_centers h)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_relative_error () =
  check_float "eq 59" 0.5
    (Metrics.relative_error ~predicted:[| 1.5 |] ~actual:[| 1. |]);
  check_float "percent" 50.
    (Metrics.relative_error_percent ~predicted:[| 1.5 |] ~actual:[| 1. |])

let test_metrics_rmse_mae () =
  let predicted = [| 1.; 2.; 3. |] and actual = [| 2.; 2.; 5. |] in
  check_float "rmse" (sqrt (5. /. 3.)) (Metrics.rmse ~predicted ~actual);
  check_float "mae" 1. (Metrics.mae ~predicted ~actual);
  check_float "max abs" 2. (Metrics.max_abs_error ~predicted ~actual)

let test_metrics_r_squared () =
  let actual = [| 1.; 2.; 3.; 4. |] in
  check_float "perfect" 1. (Metrics.r_squared ~predicted:actual ~actual);
  let mean_pred = Array.make 4 2.5 in
  check_float "mean predictor" 0. (Metrics.r_squared ~predicted:mean_pred ~actual);
  check_bool "worse than mean" true
    (Metrics.r_squared ~predicted:[| 4.; 3.; 2.; 1. |] ~actual < 0.)

(* ------------------------------------------------------------------ *)
(* Crossval *)

let test_crossval_partition () =
  let folds = Crossval.folds ~n:3 ~size:10 () in
  Alcotest.(check int) "n folds" 3 (List.length folds);
  let all_test =
    List.concat_map (fun f -> Array.to_list f.Crossval.test) folds
  in
  Alcotest.(check int) "covers all" 10 (List.length all_test);
  Alcotest.(check (list int)) "exactly 0..9" (List.init 10 Fun.id)
    (List.sort compare all_test);
  List.iter
    (fun { Crossval.train; test } ->
      Alcotest.(check int) "disjoint" 10
        (Array.length train + Array.length test);
      Array.iter
        (fun t -> check_bool "no leak" false (Array.mem t train))
        test)
    folds

let test_crossval_balanced () =
  let folds = Crossval.folds ~n:4 ~size:10 () in
  List.iter
    (fun f ->
      let s = Array.length f.Crossval.test in
      check_bool "balanced" true (s = 2 || s = 3))
    folds

let test_crossval_validation () =
  Alcotest.check_raises "too few folds"
    (Invalid_argument "Crossval.folds: need at least 2 folds") (fun () ->
      ignore (Crossval.folds ~n:1 ~size:5 ()));
  Alcotest.check_raises "too few points"
    (Invalid_argument "Crossval.folds: need at least 2 data points")
    (fun () -> ignore (Crossval.folds ~n:2 ~size:1 ()))

(* n > size clamps to leave-one-out instead of raising: no fold may ever
   come out empty. *)
let test_crossval_clamp_loo () =
  let folds = Crossval.folds ~n:6 ~size:5 () in
  Alcotest.(check int) "clamped to size" 5 (List.length folds);
  List.iter
    (fun { Crossval.train; test } ->
      Alcotest.(check int) "singleton test" 1 (Array.length test);
      Alcotest.(check int) "rest trains" 4 (Array.length train))
    folds;
  let all_test =
    List.concat_map (fun f -> Array.to_list f.Crossval.test) folds
  in
  Alcotest.(check (list int)) "covers all" (List.init 5 Fun.id)
    (List.sort compare all_test)

(* Uneven size mod n: every fold non-empty, sizes within one of each
   other, for a sweep of awkward (n, size) pairs. *)
let test_crossval_never_empty () =
  let rng = Rng.create 17 in
  List.iter
    (fun (n, size) ->
      let folds = Crossval.folds ~shuffle:rng ~n ~size () in
      let expected = Stdlib.min n size in
      Alcotest.(check int) "fold count" expected (List.length folds);
      let sizes =
        List.map (fun f -> Array.length f.Crossval.test) folds
      in
      let lo = List.fold_left Stdlib.min size sizes in
      let hi = List.fold_left Stdlib.max 0 sizes in
      check_bool "no empty fold" true (lo >= 1);
      check_bool "within one" true (hi - lo <= 1);
      Alcotest.(check int) "covers all" size (List.fold_left ( + ) 0 sizes))
    [ (2, 3); (3, 7); (4, 10); (5, 5); (7, 8); (10, 3); (100, 12) ]

let test_crossval_select () =
  (* candidates scored by |c - 3|: select must find 3 *)
  let best, score =
    Crossval.select ~n:4 ~size:8 ~candidates:[ 1.; 2.; 3.; 4. ]
      (fun c ~train:_ ~test:_ -> Float.abs (c -. 3.))
  in
  check_float "best" 3. best;
  check_float "score" 0. score

let test_crossval_score_average () =
  (* the score is the average over folds of a per-fold quantity *)
  let total =
    Crossval.score ~n:5 ~size:10 (fun ~train:_ ~test ->
        float_of_int (Array.length test))
  in
  check_float "mean test size" 2. total

(* A fold that degenerates to NaN/inf is skipped — the mean is taken
   over the finite folds only, never poisoned. *)
let test_crossval_score_skips_nonfinite () =
  let calls = ref 0 in
  let s =
    Crossval.score ~n:4 ~size:8 (fun ~train:_ ~test:_ ->
        incr calls;
        match !calls with 1 -> Float.nan | 2 -> Float.infinity | _ -> 10.)
  in
  check_float "mean over finite folds" 10. s;
  Alcotest.check_raises "all non-finite raises"
    (Invalid_argument "Crossval.score: every fold produced a non-finite score")
    (fun () ->
      ignore (Crossval.score ~n:3 ~size:6 (fun ~train:_ ~test:_ -> Float.nan)))

let test_crossval_select_skips_nonfinite () =
  (* candidate 2. NaNs on one fold but stays best on the rest; candidate
     5. is all-NaN and must be excluded from the ranking entirely *)
  let fold_no = Hashtbl.create 8 in
  let best, score =
    Crossval.select ~n:4 ~size:8 ~candidates:[ 2.; 5.; 9. ]
      (fun c ~train:_ ~test:_ ->
        let k = try Hashtbl.find fold_no c with Not_found -> 0 in
        Hashtbl.replace fold_no c (k + 1);
        if c = 5. then Float.nan
        else if c = 2. && k = 0 then Float.nan
        else Float.abs (c -. 3.))
  in
  check_float "best skips its NaN fold" 2. best;
  check_float "score over finite folds" 1. score;
  Alcotest.check_raises "all candidates non-finite"
    (Invalid_argument
       "Crossval.select: every candidate scored non-finite on every fold")
    (fun () ->
      ignore
        (Crossval.select ~n:3 ~size:6 ~candidates:[ 1.; 2. ]
           (fun _ ~train:_ ~test:_ -> Float.infinity)))

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"quantile-monotone" ~count:100
      (make
         Gen.(
           pair
             (array_size (int_range 2 30) (float_range (-100.) 100.))
             (pair (float_range 0. 1.) (float_range 0. 1.))))
      (fun (v, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Describe.quantile v lo <= Describe.quantile v hi +. 1e-9);
    Test.make ~name:"norm-cdf-monotone" ~count:200
      (make Gen.(pair (float_range (-6.) 6.) (float_range (-6.) 6.)))
      (fun (a, b) ->
        let lo = Float.min a b and hi = Float.max a b in
        Special.norm_cdf lo <= Special.norm_cdf hi +. 1e-12);
    Test.make ~name:"histogram-conserves-count" ~count:100
      (make Gen.(array_size (int_range 1 200) (float_range (-5.) 5.)))
      (fun v ->
        let h = Histogram.build ~bins:7 v in
        Array.fold_left ( + ) 0 h.Histogram.counts
        + h.Histogram.underflow + h.Histogram.overflow
        = Array.length v);
    Test.make ~name:"rel-error-scale-invariant" ~count:100
      (make
         Gen.(
           pair (float_range 0.1 10.)
             (array_size (int_range 1 20) (float_range 0.5 10.))))
      (fun (s, v) ->
        let predicted = Array.map (fun x -> x +. 0.1) v in
        let e1 = Metrics.relative_error ~predicted ~actual:v in
        let e2 =
          Metrics.relative_error
            ~predicted:(Array.map (( *. ) s) predicted)
            ~actual:(Array.map (( *. ) s) v)
        in
        Float.abs (e1 -. e2) < 1e-9);
  ]

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_streams;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int uniform" `Quick test_rng_int_range_and_mean;
          Alcotest.test_case "int bound" `Quick test_rng_int_rejects;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
          Alcotest.test_case "xoshiro spec" `Quick test_rng_xoshiro_spec;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf known" `Quick test_erf_known_values;
          Alcotest.test_case "erfc tail" `Quick test_erfc_tail;
          Alcotest.test_case "cdf symmetry" `Quick test_norm_cdf_symmetry;
          Alcotest.test_case "ppf inverse" `Quick test_norm_ppf_inverse;
          Alcotest.test_case "ppf known" `Quick test_norm_ppf_known;
          Alcotest.test_case "log gamma" `Quick test_log_gamma;
          Alcotest.test_case "pdf integrates" `Quick test_norm_pdf_integrates;
          Alcotest.test_case "erf complement" `Quick test_erf_erfc_complement;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "gaussian" `Quick test_distribution_gaussian;
          Alcotest.test_case "lognormal" `Quick test_distribution_lognormal;
          Alcotest.test_case "uniform" `Quick test_distribution_uniform;
          Alcotest.test_case "validation" `Quick test_distribution_validation;
          Alcotest.test_case "log pdf" `Quick test_log_pdf_consistency;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "lhs stratified" `Quick test_lhs_stratification;
          Alcotest.test_case "mc dims" `Quick test_mc_dims;
          Alcotest.test_case "halton primes" `Quick test_halton_primes;
          Alcotest.test_case "halton moments" `Quick test_halton_low_discrepancy;
          Alcotest.test_case "halton deterministic" `Quick
            test_halton_deterministic_given_rng;
          Alcotest.test_case "dispatch" `Quick test_scheme_dispatch;
        ] );
      ( "describe",
        [
          Alcotest.test_case "quantiles" `Quick test_describe_quantiles;
          Alcotest.test_case "variance" `Quick test_describe_variance;
          Alcotest.test_case "summary" `Quick test_describe_summary;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "overflow" `Quick test_histogram_overflow;
          Alcotest.test_case "density" `Quick test_histogram_density_integrates;
          Alcotest.test_case "max inside" `Quick test_histogram_max_inside;
          Alcotest.test_case "edges" `Quick test_histogram_edges_centers;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "relative error" `Quick test_metrics_relative_error;
          Alcotest.test_case "rmse mae" `Quick test_metrics_rmse_mae;
          Alcotest.test_case "r squared" `Quick test_metrics_r_squared;
        ] );
      ( "crossval",
        [
          Alcotest.test_case "partition" `Quick test_crossval_partition;
          Alcotest.test_case "balanced" `Quick test_crossval_balanced;
          Alcotest.test_case "validation" `Quick test_crossval_validation;
          Alcotest.test_case "clamp to leave-one-out" `Quick
            test_crossval_clamp_loo;
          Alcotest.test_case "never empty" `Quick test_crossval_never_empty;
          Alcotest.test_case "select" `Quick test_crossval_select;
          Alcotest.test_case "score" `Quick test_crossval_score_average;
          Alcotest.test_case "score skips non-finite" `Quick
            test_crossval_score_skips_nonfinite;
          Alcotest.test_case "select skips non-finite" `Quick
            test_crossval_select_skips_nonfinite;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
