(* Unit and property tests for the dense/sparse linear algebra layer. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let rng = Stats.Rng.create 12345

let random_vec n = Stats.Rng.gaussian_vec rng n

let random_mat r c = Mat.init r c (fun _ _ -> Stats.Rng.gaussian rng)

(* A well-conditioned SPD matrix: B^T B + 2I. *)
let random_spd n =
  let b = random_mat n n in
  Mat.add_diag (Mat.gram b) (Array.make n 2.)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.; 2.; 3. ] in
  check_int "dim" 3 (Vec.dim v);
  check_float "dot" 14. (Vec.dot v v);
  check_float "nrm2" (sqrt 14.) (Vec.nrm2 v);
  check_float "norm1" 6. (Vec.norm1 v);
  check_float "norm_inf" 3. (Vec.norm_inf v);
  check_float "sum" 6. (Vec.sum v);
  check_float "mean" 2. (Vec.mean v);
  check_float "min" 1. (Vec.min v);
  check_float "max" 3. (Vec.max v)

let test_vec_ops () =
  let x = Vec.of_list [ 1.; -2.; 3. ] and y = Vec.of_list [ 4.; 5.; -6. ] in
  check_bool "add" true (Vec.approx_equal (Vec.add x y) [| 5.; 3.; -3. |]);
  check_bool "sub" true (Vec.approx_equal (Vec.sub x y) [| -3.; -7.; 9. |]);
  check_bool "mul" true (Vec.approx_equal (Vec.mul x y) [| 4.; -10.; -18. |]);
  check_bool "scale" true (Vec.approx_equal (Vec.scale 2. x) [| 2.; -4.; 6. |]);
  check_bool "neg" true (Vec.approx_equal (Vec.neg x) [| -1.; 2.; -3. |]);
  let z = Vec.copy y in
  Vec.axpy 2. x z;
  check_bool "axpy" true (Vec.approx_equal z [| 6.; 1.; 0. |]);
  check_int "argmax_abs" 1 (Vec.argmax_abs [| 1.; -5.; 3. |])

let test_vec_nrm2_overflow () =
  (* naive sum of squares would overflow at 1e200 *)
  let v = [| 1e200; 1e200 |] in
  check_bool "no overflow" true (Float.is_finite (Vec.nrm2 v));
  Alcotest.(check (float 1e190))
    "scaled norm" (1e200 *. sqrt 2.) (Vec.nrm2 v)

let test_vec_rel_error () =
  check_float "identical" 0. (Vec.rel_error [| 1.; 2. |] [| 1.; 2. |]);
  check_float "zero exact" (sqrt 2.) (Vec.rel_error [| 1.; 1. |] [| 0.; 0. |]);
  check_float "half" 0.5 (Vec.rel_error [| 1.5 |] [| 1. |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot" (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_empty () =
  check_float "sum empty" 0. (Vec.sum [||]);
  check_float "nrm2 empty" 0. (Vec.nrm2 [||]);
  Alcotest.check_raises "mean empty" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Vec.mean [||]))

let test_vec_kahan () =
  (* compensated summation keeps 1 + 1e-16 * n accurate *)
  let n = 100000 in
  let v = Array.make (n + 1) 1e-12 in
  v.(0) <- 1.;
  let expected = 1. +. (1e-12 *. float_of_int n) in
  Alcotest.(check (float 1e-15)) "kahan" expected (Vec.sum v)

(* ------------------------------------------------------------------ *)
(* Mat *)

let test_mat_basic () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_int "rows" 2 (Mat.rows a);
  check_int "cols" 2 (Mat.cols a);
  check_float "get" 3. (Mat.get a 1 0);
  let t = Mat.transpose a in
  check_float "transpose" 2. (Mat.get t 1 0);
  check_bool "row" true (Vec.approx_equal (Mat.row a 0) [| 1.; 2. |]);
  check_bool "col" true (Vec.approx_equal (Mat.col a 1) [| 2.; 4. |]);
  check_bool "diag" true (Vec.approx_equal (Mat.diag a) [| 1.; 4. |])

let test_mat_gemv () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  check_bool "gemv" true
    (Vec.approx_equal (Mat.gemv a [| 1.; 1.; 1. |]) [| 6.; 15. |]);
  check_bool "gemv_t" true
    (Vec.approx_equal (Mat.gemv_t a [| 1.; 1. |]) [| 5.; 7.; 9. |])

let test_mat_gemm_identity () =
  let a = random_mat 7 7 in
  check_bool "a*I = a" true (Mat.approx_equal (Mat.gemm a (Mat.identity 7)) a);
  check_bool "I*a = a" true (Mat.approx_equal (Mat.gemm (Mat.identity 7) a) a)

let test_mat_gemm_assoc () =
  let a = random_mat 4 5 and b = random_mat 5 6 and c = random_mat 6 3 in
  let left = Mat.gemm (Mat.gemm a b) c in
  let right = Mat.gemm a (Mat.gemm b c) in
  check_bool "(ab)c = a(bc)" true (Mat.approx_equal ~tol:1e-8 left right)

let test_mat_gram () =
  let a = random_mat 6 4 in
  let expected = Mat.gemm (Mat.transpose a) a in
  check_bool "gram = a^T a" true (Mat.approx_equal (Mat.gram a) expected);
  check_bool "gram symmetric" true (Mat.is_symmetric (Mat.gram a))

let test_mat_weighted_gram () =
  let a = random_mat 5 3 in
  let w = [| 0.5; 2.; 1.5; 0.1; 3. |] in
  let expected =
    Mat.gemm (Mat.transpose a) (Mat.init 5 3 (fun i j -> w.(i) *. Mat.get a i j))
  in
  check_bool "weighted gram" true
    (Mat.approx_equal (Mat.weighted_gram a w) expected)

let test_mat_outer_gram () =
  let a = random_mat 3 8 in
  let expected = Mat.gemm a (Mat.transpose a) in
  check_bool "outer gram" true (Mat.approx_equal (Mat.outer_gram a) expected);
  let w = Array.init 8 (fun i -> 0.3 +. float_of_int i) in
  let aw = Mat.mul_cols a w in
  let expected_w = Mat.gemm aw (Mat.transpose a) in
  check_bool "weighted outer gram" true
    (Mat.approx_equal (Mat.weighted_outer_gram a w) expected_w)

let test_mat_add_diag () =
  let a = random_mat 4 4 in
  let d = [| 1.; 2.; 3.; 4. |] in
  let b = Mat.add_diag a d in
  for i = 0 to 3 do
    check_float "diag entry" (Mat.get a i i +. d.(i)) (Mat.get b i i)
  done;
  check_float "off diag unchanged" (Mat.get a 0 1) (Mat.get b 0 1)

let test_mat_swap_rows () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  Mat.swap_rows a 0 2;
  check_bool "swapped" true (Vec.approx_equal (Mat.row a 0) [| 5.; 6. |]);
  check_bool "swapped back row" true (Vec.approx_equal (Mat.row a 2) [| 1.; 2. |])

let test_mat_bad_dims () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Mat.of_arrays: ragged rows") (fun () ->
      ignore (Mat.of_arrays [| [| 1. |]; [| 1.; 2. |] |]));
  let a = random_mat 2 3 and b = random_mat 2 3 in
  Alcotest.check_raises "gemm mismatch"
    (Invalid_argument "Mat.gemm: dimension mismatch (2x3 * 2x3)") (fun () ->
      ignore (Mat.gemm a b))

(* ------------------------------------------------------------------ *)
(* Cholesky *)

let test_cholesky_reconstruct () =
  let a = random_spd 8 in
  let f = Cholesky.factorize a in
  let l = Cholesky.factor f in
  let back = Mat.gemm l (Mat.transpose l) in
  check_bool "l l^T = a" true (Mat.approx_equal ~tol:1e-8 back a)

let test_cholesky_solve () =
  let a = random_spd 10 in
  let x_true = random_vec 10 in
  let b = Mat.gemv a x_true in
  let x = Cholesky.solve_system a b in
  check_bool "solution" true (Vec.approx_equal ~tol:1e-7 x x_true)

let test_cholesky_solve_mat () =
  let a = random_spd 6 in
  let f = Cholesky.factorize a in
  let inv = Cholesky.inverse f in
  check_bool "a * a^-1 = I" true
    (Mat.approx_equal ~tol:1e-7 (Mat.gemm a inv) (Mat.identity 6))

let test_cholesky_log_det () =
  let a = Mat.of_diag [| 2.; 3.; 4. |] in
  let f = Cholesky.factorize a in
  check_float "log det" (log 24.) (Cholesky.log_det f)

let test_cholesky_not_pd () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  (* eigenvalues 3 and -1 *)
  check_bool "raises" true
    (try
       ignore (Cholesky.factorize a);
       false
     with Cholesky.Not_positive_definite _ -> true)

(* ------------------------------------------------------------------ *)
(* LU *)

let test_lu_solve () =
  let a = random_mat 9 9 in
  let x_true = random_vec 9 in
  let b = Mat.gemv a x_true in
  let x = Lu.solve_system a b in
  check_bool "solution" true (Vec.approx_equal ~tol:1e-6 x x_true)

let test_lu_needs_pivoting () =
  (* zero pivot in position (0,0) requires row exchange *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Lu.solve_system a [| 2.; 3. |] in
  check_bool "pivoted solve" true (Vec.approx_equal x [| 3.; 2. |])

let test_lu_det () =
  let a = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_float "diag det" 6. (Lu.det (Lu.factorize a));
  let p = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float "permutation det" (-1.) (Lu.det (Lu.factorize p))

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  check_bool "raises" true
    (try
       ignore (Lu.factorize a);
       false
     with Lu.Singular _ -> true)

let test_lu_inverse () =
  let a = random_mat 5 5 in
  let inv = Lu.inverse (Lu.factorize a) in
  check_bool "inverse" true
    (Mat.approx_equal ~tol:1e-7 (Mat.gemm a inv) (Mat.identity 5))

(* ------------------------------------------------------------------ *)
(* QR *)

let test_qr_thin_orthonormal () =
  let a = random_mat 12 5 in
  let f = Qr.factorize a in
  let q = Qr.q_thin f in
  let qtq = Mat.gram q in
  check_bool "q^T q = I" true (Mat.approx_equal ~tol:1e-8 qtq (Mat.identity 5))

let test_qr_reconstruct () =
  let a = random_mat 10 4 in
  let f = Qr.factorize a in
  let back = Mat.gemm (Qr.q_thin f) (Qr.r f) in
  check_bool "qr = a" true (Mat.approx_equal ~tol:1e-8 back a)

let test_qr_least_squares_exact () =
  let a = random_mat 8 8 in
  let x_true = random_vec 8 in
  let b = Mat.gemv a x_true in
  check_bool "square solve" true
    (Vec.approx_equal ~tol:1e-6 (Qr.least_squares a b) x_true)

let test_qr_least_squares_overdetermined () =
  (* the LS solution satisfies the normal equations *)
  let a = random_mat 20 6 in
  let b = random_vec 20 in
  let x = Qr.least_squares a b in
  let residual = Vec.sub (Mat.gemv a x) b in
  let grad = Mat.gemv_t a residual in
  check_bool "normal equations" true
    (Vec.approx_equal ~tol:1e-8 grad (Array.make 6 0.))

let test_qr_residual_norm () =
  let a = random_mat 15 4 in
  let b = random_vec 15 in
  let f = Qr.factorize a in
  let x = Qr.solve_ls f b in
  let expected = Vec.nrm2 (Vec.sub (Mat.gemv a x) b) in
  Alcotest.(check (float 1e-8)) "residual" expected (Qr.residual_norm f b)

let test_qr_underdetermined_rejected () =
  let a = random_mat 3 5 in
  Alcotest.check_raises "rows < cols"
    (Invalid_argument "Qr.factorize: need rows >= cols") (fun () ->
      ignore (Qr.factorize a))

(* ------------------------------------------------------------------ *)
(* Eigen_sym *)

let test_eigen_diag () =
  let a = Mat.of_diag [| 3.; 1.; 2. |] in
  let e = Eigen_sym.decompose a in
  check_bool "sorted values" true
    (Vec.approx_equal e.values [| 1.; 2.; 3. |])

let test_eigen_reconstruct () =
  let a = random_spd 7 in
  let e = Eigen_sym.decompose a in
  check_bool "v d v^T = a" true
    (Mat.approx_equal ~tol:1e-7 (Eigen_sym.reconstruct e) a)

let test_eigen_orthonormal_vectors () =
  let a = random_spd 6 in
  let e = Eigen_sym.decompose a in
  check_bool "v^T v = I" true
    (Mat.approx_equal ~tol:1e-8 (Mat.gram e.vectors) (Mat.identity 6))

let test_eigen_condition () =
  let e = Eigen_sym.decompose (Mat.of_diag [| 1.; 10. |]) in
  check_float "kappa" 10. (Eigen_sym.condition_number e)

(* ------------------------------------------------------------------ *)
(* Woodbury *)

let test_woodbury_matches_direct () =
  let k = 4 and m = 30 in
  let g = random_mat k m in
  let d = Array.init m (fun i -> 0.5 +. (0.1 *. float_of_int i)) in
  let scale = 0.8 in
  let b = random_vec m in
  let full = Mat.add_diag (Mat.scale scale (Mat.gram g)) d in
  let expected = Cholesky.solve_system full b in
  let got = Woodbury.solve_system ~d ~g ~scale b in
  check_bool "exact" true (Vec.approx_equal ~tol:1e-8 got expected)

let test_woodbury_many_rhs () =
  let k = 3 and m = 12 in
  let g = random_mat k m in
  let d = Array.make m 1.5 in
  let f = Woodbury.factorize ~d ~g ~scale:1. in
  check_int "dim" m (Woodbury.dim f);
  check_int "rank" k (Woodbury.rank f);
  let bs = [ random_vec m; random_vec m ] in
  let xs = Woodbury.solve_many f bs in
  let full = Mat.add_diag (Mat.gram g) d in
  List.iter2
    (fun x b ->
      check_bool "rhs" true
        (Vec.approx_equal ~tol:1e-8 (Mat.gemv full x) b))
    xs bs

let test_woodbury_rejects_bad_inputs () =
  let g = random_mat 2 5 in
  Alcotest.check_raises "nonpositive d"
    (Invalid_argument "Woodbury.factorize: d.(1) must be positive") (fun () ->
      ignore (Woodbury.factorize ~d:[| 1.; 0.; 1.; 1.; 1. |] ~g ~scale:1.));
  Alcotest.check_raises "nonpositive scale"
    (Invalid_argument "Woodbury.factorize: scale must be positive and finite")
    (fun () -> ignore (Woodbury.factorize ~d:(Array.make 5 1.) ~g ~scale:0.))

(* ------------------------------------------------------------------ *)
(* Sparse + CG *)

let test_sparse_roundtrip () =
  let dense = random_mat 5 7 in
  let sp = Sparse.of_dense dense in
  check_bool "roundtrip" true (Mat.approx_equal (Sparse.to_dense sp) dense)

let test_sparse_duplicate_sum () =
  let sp =
    Sparse.of_triplets ~rows:2 ~cols:2
      [
        { Sparse.row = 0; col = 0; value = 1. };
        { Sparse.row = 0; col = 0; value = 2.5 };
        { Sparse.row = 1; col = 1; value = -1. };
      ]
  in
  check_float "summed" 3.5 (Sparse.get sp 0 0);
  check_float "single" (-1.) (Sparse.get sp 1 1);
  check_float "absent" 0. (Sparse.get sp 0 1);
  check_int "nnz" 2 (Sparse.nnz sp)

let test_sparse_mv () =
  let dense = random_mat 6 4 in
  let sp = Sparse.of_dense dense in
  let x = random_vec 4 and y = random_vec 6 in
  check_bool "mv" true (Vec.approx_equal (Sparse.mv sp x) (Mat.gemv dense x));
  check_bool "mv_t" true
    (Vec.approx_equal (Sparse.mv_t sp y) (Mat.gemv_t dense y))

let test_sparse_bounds () =
  Alcotest.check_raises "range"
    (Invalid_argument "Sparse.of_triplets: index (2, 0) out of 2x2")
    (fun () ->
      ignore
        (Sparse.of_triplets ~rows:2 ~cols:2
           [ { Sparse.row = 2; col = 0; value = 1. } ]))

let test_cg_matches_direct () =
  let a = random_spd 12 in
  let b = random_vec 12 in
  let expected = Cholesky.solve_system a b in
  let result = Conj_grad.solve (Sparse.of_dense a) b in
  check_bool "converged" true result.converged;
  check_bool "solution" true
    (Vec.approx_equal ~tol:1e-6 result.solution expected)

let test_cg_diagonal_one_step_family () =
  (* on a diagonal system Jacobi-preconditioned CG converges in one
     iteration *)
  let a = Sparse.of_dense (Mat.of_diag [| 2.; 5.; 9. |]) in
  let result = Conj_grad.solve a [| 2.; 5.; 9. |] in
  check_bool "solution" true
    (Vec.approx_equal result.solution [| 1.; 1.; 1. |]);
  check_bool "fast" true (result.iterations <= 2)


(* ------------------------------------------------------------------ *)
(* SVD *)

let test_svd_reconstruct () =
  let a = random_mat 10 6 in
  let f = Svd.decompose a in
  check_bool "usv = a" true (Mat.approx_equal ~tol:1e-8 (Svd.reconstruct f) a)

let test_svd_orthonormal_factors () =
  let a = random_mat 9 5 in
  let f = Svd.decompose a in
  check_bool "u^T u = I" true
    (Mat.approx_equal ~tol:1e-8 (Mat.gram f.u) (Mat.identity 5));
  check_bool "v^T v = I" true
    (Mat.approx_equal ~tol:1e-8 (Mat.gram f.v) (Mat.identity 5))

let test_svd_values_sorted_nonnegative () =
  let a = random_mat 8 8 in
  let f = Svd.decompose a in
  let s = f.Svd.s in
  for i = 0 to Array.length s - 2 do
    check_bool "descending" true (s.(i) >= s.(i + 1));
    check_bool "nonnegative" true (s.(i + 1) >= 0.)
  done

let test_svd_diag_known () =
  let a = Mat.of_diag [| 3.; 1.; 2. |] in
  let f = Svd.decompose a in
  check_bool "known values" true
    (Vec.approx_equal f.Svd.s [| 3.; 2.; 1. |])

let test_svd_rank_deficient () =
  (* duplicate column -> rank 2 of 3 *)
  let b = random_mat 6 2 in
  let a =
    Mat.init 6 3 (fun i j -> if j < 2 then Mat.get b i j else Mat.get b i 0)
  in
  let f = Svd.decompose a in
  check_int "rank" 2 (Svd.rank f);
  check_bool "infinite condition" true (Svd.condition_number f > 1e9)

let test_svd_pseudo_inverse () =
  let a = random_mat 8 4 in
  let f = Svd.decompose a in
  let pinv = Svd.pseudo_inverse f in
  (* a+ a = I for full column rank *)
  check_bool "left inverse" true
    (Mat.approx_equal ~tol:1e-7 (Mat.gemm pinv a) (Mat.identity 4))

let test_svd_min_norm_matches_qr () =
  let a = random_mat 12 5 in
  let b = random_vec 12 in
  let svd_sol = Svd.solve_min_norm (Svd.decompose a) b in
  let qr_sol = Qr.least_squares a b in
  check_bool "agrees with QR" true (Vec.approx_equal ~tol:1e-7 svd_sol qr_sol)

let test_svd_singular_values_match_eigen () =
  (* s_i^2 are the eigenvalues of a^T a *)
  let a = random_mat 7 4 in
  let f = Svd.decompose a in
  let e = Eigen_sym.decompose (Mat.gram a) in
  let eig_sorted = Array.map sqrt (Array.map (Float.max 0.) e.Eigen_sym.values) in
  Array.sort (fun x y -> Float.compare y x) eig_sorted;
  check_bool "match eigenvalues" true
    (Vec.approx_equal ~tol:1e-7 f.Svd.s eig_sorted)


(* ------------------------------------------------------------------ *)
(* Vec/Mat odds and ends *)

let test_vec_slice_concat () =
  let v = [| 1.; 2.; 3.; 4.; 5. |] in
  check_bool "slice" true (Vec.approx_equal (Vec.slice v 1 3) [| 2.; 3.; 4. |]);
  check_bool "concat" true
    (Vec.approx_equal (Vec.concat [ [| 1. |]; [| 2.; 3. |] ]) [| 1.; 2.; 3. |]);
  let doubled = Vec.mapi (fun i x -> float_of_int i +. x) v in
  check_bool "mapi" true (Vec.approx_equal doubled [| 1.; 3.; 5.; 7.; 9. |]);
  check_float "fold" 15. (Vec.fold ( +. ) 0. v);
  let acc = ref 0. in
  Vec.iteri (fun i x -> acc := !acc +. (float_of_int i *. x)) v;
  check_float "iteri" 40. !acc

let test_vec_scale_inplace_and_fill () =
  let v = [| 1.; 2. |] in
  Vec.scale_inplace 3. v;
  check_bool "scale inplace" true (Vec.approx_equal v [| 3.; 6. |]);
  Vec.fill v 7.;
  check_bool "fill" true (Vec.approx_equal v [| 7.; 7. |]);
  let w = [| 1.; 1. |] in
  Vec.add_inplace w v;
  check_bool "add inplace" true (Vec.approx_equal v [| 8.; 8. |]);
  Vec.sub_inplace w v;
  check_bool "sub inplace" true (Vec.approx_equal v [| 7.; 7. |])

let test_vec_pp_smoke () =
  let s = Format.asprintf "%a" Vec.pp (Array.init 20 float_of_int) in
  check_bool "truncates" true (String.length s < 120);
  check_bool "mentions length" true
    (try ignore (Str.search_forward (Str.regexp_string "(20)") s 0); true
     with Not_found -> false)

let test_mat_of_rows_and_setters () =
  let a = Mat.of_rows [ [| 1.; 2. |]; [| 3.; 4. |] ] in
  Mat.set_row a 0 [| 9.; 8. |];
  check_bool "set_row" true (Vec.approx_equal (Mat.row a 0) [| 9.; 8. |]);
  Mat.set_col a 1 [| 5.; 6. |];
  check_float "set_col" 6. (Mat.get a 1 1);
  Alcotest.check_raises "set_row length"
    (Invalid_argument "Mat.set_row: length mismatch") (fun () ->
      Mat.set_row a 0 [| 1. |]);
  let b = Mat.map (fun x -> 2. *. x) a in
  check_float "map" 18. (Mat.get b 0 0);
  check_float "frobenius" (Vec.nrm2 [| 18.; 10.; 6.; 12. |])
    (Mat.frobenius b);
  let s = Format.asprintf "%a" Mat.pp a in
  check_bool "pp smoke" true (String.length s > 10)

let test_mat_of_diag_identity_scale () =
  let d = Mat.of_diag [| 1.; 2.; 3. |] in
  check_bool "diagonal roundtrip" true
    (Vec.approx_equal (Mat.diag d) [| 1.; 2.; 3. |]);
  let s = Mat.scale 2. d in
  check_float "scale" 4. (Mat.get s 1 1);
  let sum = Mat.add d d in
  check_float "add" 6. (Mat.get sum 2 2);
  let diff = Mat.sub sum d in
  check_bool "sub" true (Mat.approx_equal diff d)

(* ------------------------------------------------------------------ *)
(* Properties *)


let qcheck_tests =
  let open QCheck in
  let float_range = Gen.float_range (-10.) 10. in
  let vec_gen n = Gen.array_size (Gen.return n) float_range in
  [
    Test.make ~name:"cauchy-schwarz" ~count:200
      (make (Gen.pair (vec_gen 6) (vec_gen 6)))
      (fun (x, y) ->
        Float.abs (Vec.dot x y) <= (Vec.nrm2 x *. Vec.nrm2 y) +. 1e-6);
    Test.make ~name:"triangle-inequality" ~count:200
      (make (Gen.pair (vec_gen 5) (vec_gen 5)))
      (fun (x, y) ->
        Vec.nrm2 (Vec.add x y) <= Vec.nrm2 x +. Vec.nrm2 y +. 1e-9);
    Test.make ~name:"transpose-involution" ~count:50
      (make (Gen.array_size (Gen.return 12) float_range))
      (fun data ->
        let a = Mat.init 3 4 (fun i j -> data.((i * 4) + j)) in
        Mat.approx_equal (Mat.transpose (Mat.transpose a)) a);
    Test.make ~name:"gemv-linearity" ~count:100
      (make Gen.(triple (vec_gen 4) (vec_gen 4) (vec_gen 12)))
      (fun (x, y, data) ->
        let a = Mat.init 3 4 (fun i j -> data.((i * 4) + j)) in
        Vec.approx_equal ~tol:1e-6
          (Mat.gemv a (Vec.add x y))
          (Vec.add (Mat.gemv a x) (Mat.gemv a y)));
    Test.make ~name:"lu-solves-random-systems" ~count:50
      (make (Gen.array_size (Gen.return 20) (Gen.float_range 0.5 3.)))
      (fun data ->
        (* diagonally dominant, hence nonsingular *)
        let a =
          Mat.init 4 4 (fun i j ->
              if i = j then 10. +. data.((i * 4) + j)
              else data.((i * 4) + j) -. 1.5)
        in
        let x = Array.sub data 16 4 in
        let b = Mat.gemv a x in
        Vec.approx_equal ~tol:1e-6 (Lu.solve_system a b) x);
    Test.make ~name:"cholesky-energy-positive" ~count:50
      (make (Gen.array_size (Gen.return 16) float_range))
      (fun data ->
        let b = Mat.init 4 4 (fun i j -> data.((i * 4) + j)) in
        let a = Mat.add_diag (Mat.gram b) (Array.make 4 1.) in
        let f = Cholesky.factorize a in
        ignore (Cholesky.factor f);
        true);
    (* every [_into] kernel must be bitwise identical to its allocating
       twin, writing only the contracted prefix of a longer buffer *)
    Test.make ~name:"gemv_into-bitwise-gemv" ~count:100
      (make Gen.(pair (vec_gen 4) (vec_gen 12)))
      (fun (x, data) ->
        let a = Mat.init 3 4 (fun i j -> data.((i * 4) + j)) in
        let expect = Mat.gemv a x in
        let y = Array.make 5 nan in
        Mat.gemv_into a x y;
        Array.for_all2 Float.equal expect (Array.sub y 0 3)
        && Float.is_nan y.(3) && Float.is_nan y.(4));
    Test.make ~name:"gemv_t_into-bitwise-gemv_t" ~count:100
      (make Gen.(pair (vec_gen 3) (vec_gen 12)))
      (fun (x, data) ->
        let a = Mat.init 3 4 (fun i j -> data.((i * 4) + j)) in
        let expect = Mat.gemv_t a x in
        let y = Array.make 6 nan in
        Mat.gemv_t_into a x y;
        Array.for_all2 Float.equal expect (Array.sub y 0 4));
    Test.make ~name:"gemm_into-bitwise-gemm" ~count:50
      (make Gen.(pair (vec_gen 12) (vec_gen 8)))
      (fun (da, db) ->
        let a = Mat.init 3 4 (fun i j -> da.((i * 4) + j)) in
        let b = Mat.init 4 2 (fun i j -> db.((i * 2) + j)) in
        let c = Mat.create 3 2 in
        Mat.gemm_into a b c;
        Mat.equal (Mat.gemm a b) c);
    Test.make ~name:"vec-into-twins-bitwise" ~count:100
      (make Gen.(pair (vec_gen 6) (vec_gen 6)))
      (fun (x, y) ->
        let dst = Array.make 6 nan in
        Vec.add_into x y dst;
        let ok_add = Array.for_all2 Float.equal (Vec.add x y) dst in
        Vec.sub_into x y dst;
        let ok_sub = Array.for_all2 Float.equal (Vec.sub x y) dst in
        Vec.mul_into x y dst;
        let ok_mul = Array.for_all2 Float.equal (Vec.mul x y) dst in
        (* aliasing the destination with an input is part of the
           contract *)
        let expect_alias = Vec.mul x y in
        let x' = Vec.copy x in
        Vec.mul_into x' y x';
        ok_add && ok_sub && ok_mul
        && Array.for_all2 Float.equal expect_alias x');
    Test.make ~name:"cholesky-solve_into-bitwise-solve" ~count:50
      (make Gen.(pair (vec_gen 4) (vec_gen 16)))
      (fun (b, data) ->
        let m = Mat.init 4 4 (fun i j -> data.((i * 4) + j)) in
        let a = Mat.add_diag (Mat.gram m) (Array.make 4 1.) in
        let f = Cholesky.factorize a in
        let expect = Cholesky.solve f b in
        let y = Array.make 6 nan and dst = Array.make 5 nan in
        Cholesky.solve_into f b ~y ~dst;
        Array.for_all2 Float.equal expect (Array.sub dst 0 4));
    Test.make ~name:"row_dot-and-col_nrm2-bitwise" ~count:100
      (make Gen.(pair (vec_gen 4) (vec_gen 12)))
      (fun (x, data) ->
        let a = Mat.init 3 4 (fun i j -> data.((i * 4) + j)) in
        let rows_ok = ref true and cols_ok = ref true in
        for i = 0 to 2 do
          if not (Float.equal (Vec.dot (Mat.row a i) x) (Mat.row_dot a i x))
          then rows_ok := false;
          let dst = Array.make 4 nan in
          Mat.row_into a i dst;
          if not (Array.for_all2 Float.equal (Mat.row a i) dst) then
            rows_ok := false
        done;
        for j = 0 to 3 do
          if not (Float.equal (Vec.nrm2 (Mat.col a j)) (Mat.col_nrm2 a j))
          then cols_ok := false
        done;
        !rows_ok && !cols_ok);
    (* the unweighted gram fast paths must match the all-ones weighted
       kernels bit for bit (1 * x is exactly x in IEEE) *)
    Test.make ~name:"gram-fast-path-bitwise" ~count:50
      (make (Gen.array_size (Gen.return 12) float_range))
      (fun data ->
        let a = Mat.init 3 4 (fun i j -> data.((i * 4) + j)) in
        Mat.equal (Mat.gram a) (Mat.weighted_gram a (Array.make 3 1.))
        && Mat.equal (Mat.outer_gram a)
             (Mat.weighted_outer_gram a (Array.make 4 1.)));
  ]

(* Regression for the conjugate-gradient direction update: when [r.z]
   underflows to exactly zero while the residual is still above
   tolerance, [beta = rz_new / rz] is NaN and, unguarded, poisons the
   search direction and then the solution. The guard must bail out like
   the non-SPD path instead. *)
let test_cg_rz_underflow_guard () =
  let n = 4 in
  let a =
    Sparse.of_triplets ~rows:n ~cols:n
      (List.init n (fun i -> { Sparse.row = i; col = i; value = 1e300 }))
  in
  let b = Array.make n 1e-305 in
  let r = Conj_grad.solve ~precondition:false a b in
  check_bool "solution stays finite" true
    (Array.for_all Float.is_finite r.Conj_grad.solution);
  check_bool "reports non-convergence" false r.Conj_grad.converged

(* Storage-plane invariants of the Bigarray-backed matrices: flat
   round-trips, row blits, and capacity views that share storage. *)
let test_mat_flat_roundtrip_and_views () =
  let a = Mat.init 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let flat = Mat.to_flat a in
  check_bool "to_flat/of_flat round-trip" true
    (Mat.equal a (Mat.of_flat ~rows:3 ~cols:4 flat));
  check_bool "of_flat rejects bad length" true
    (try
       ignore (Mat.of_flat ~rows:2 ~cols:4 flat);
       false
     with Invalid_argument _ -> true);
  (* a view shares storage: writes through the view land in the arena *)
  let arena = Mat.create 8 4 in
  let view = Mat.view_rows arena 3 in
  Mat.blit_rows ~src:a ~dst:view ~dst_row:0;
  check_bool "view shares storage" true
    (Float.equal (Mat.get arena 2 3) 23.);
  check_bool "copy of a view is tight" true
    (Mat.equal a (Mat.copy view));
  check_bool "view_rows rejects over-capacity" true
    (try
       ignore (Mat.view_rows arena 9);
       false
     with Invalid_argument _ -> true);
  (* blit_rows places rows at an offset and refuses overflow *)
  Mat.blit_rows ~src:a ~dst:arena ~dst_row:5;
  check_bool "blit at offset" true (Float.equal (Mat.get arena 5 0) 0.);
  check_bool "blit at offset end" true (Float.equal (Mat.get arena 7 3) 23.);
  check_bool "blit_rows rejects overflow" true
    (try
       Mat.blit_rows ~src:a ~dst:arena ~dst_row:6;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "nrm2 overflow" `Quick test_vec_nrm2_overflow;
          Alcotest.test_case "rel_error" `Quick test_vec_rel_error;
          Alcotest.test_case "dim mismatch" `Quick test_vec_dim_mismatch;
          Alcotest.test_case "empty" `Quick test_vec_empty;
          Alcotest.test_case "kahan" `Quick test_vec_kahan;
        ] );
      ( "mat",
        [
          Alcotest.test_case "basic" `Quick test_mat_basic;
          Alcotest.test_case "gemv" `Quick test_mat_gemv;
          Alcotest.test_case "gemm identity" `Quick test_mat_gemm_identity;
          Alcotest.test_case "gemm assoc" `Quick test_mat_gemm_assoc;
          Alcotest.test_case "gram" `Quick test_mat_gram;
          Alcotest.test_case "weighted gram" `Quick test_mat_weighted_gram;
          Alcotest.test_case "outer gram" `Quick test_mat_outer_gram;
          Alcotest.test_case "add_diag" `Quick test_mat_add_diag;
          Alcotest.test_case "swap rows" `Quick test_mat_swap_rows;
          Alcotest.test_case "bad dims" `Quick test_mat_bad_dims;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "reconstruct" `Quick test_cholesky_reconstruct;
          Alcotest.test_case "solve" `Quick test_cholesky_solve;
          Alcotest.test_case "inverse" `Quick test_cholesky_solve_mat;
          Alcotest.test_case "log det" `Quick test_cholesky_log_det;
          Alcotest.test_case "not pd" `Quick test_cholesky_not_pd;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
        ] );
      ( "qr",
        [
          Alcotest.test_case "thin orthonormal" `Quick test_qr_thin_orthonormal;
          Alcotest.test_case "reconstruct" `Quick test_qr_reconstruct;
          Alcotest.test_case "square exact" `Quick test_qr_least_squares_exact;
          Alcotest.test_case "overdetermined" `Quick
            test_qr_least_squares_overdetermined;
          Alcotest.test_case "residual norm" `Quick test_qr_residual_norm;
          Alcotest.test_case "underdetermined rejected" `Quick
            test_qr_underdetermined_rejected;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "diagonal" `Quick test_eigen_diag;
          Alcotest.test_case "reconstruct" `Quick test_eigen_reconstruct;
          Alcotest.test_case "orthonormal" `Quick test_eigen_orthonormal_vectors;
          Alcotest.test_case "condition" `Quick test_eigen_condition;
        ] );
      ( "woodbury",
        [
          Alcotest.test_case "matches direct" `Quick test_woodbury_matches_direct;
          Alcotest.test_case "many rhs" `Quick test_woodbury_many_rhs;
          Alcotest.test_case "bad inputs" `Quick test_woodbury_rejects_bad_inputs;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "roundtrip" `Quick test_sparse_roundtrip;
          Alcotest.test_case "duplicates" `Quick test_sparse_duplicate_sum;
          Alcotest.test_case "mv" `Quick test_sparse_mv;
          Alcotest.test_case "bounds" `Quick test_sparse_bounds;
        ] );
      ( "conj_grad",
        [
          Alcotest.test_case "matches direct" `Quick test_cg_matches_direct;
          Alcotest.test_case "diagonal" `Quick test_cg_diagonal_one_step_family;
          Alcotest.test_case "rz underflow guard" `Quick
            test_cg_rz_underflow_guard;
        ] );
      ( "storage",
        [
          Alcotest.test_case "flat round-trips and views" `Quick
            test_mat_flat_roundtrip_and_views;
        ] );
      ( "odds_and_ends",
        [
          Alcotest.test_case "slice/concat/iter" `Quick test_vec_slice_concat;
          Alcotest.test_case "inplace ops" `Quick
            test_vec_scale_inplace_and_fill;
          Alcotest.test_case "vec pp" `Quick test_vec_pp_smoke;
          Alcotest.test_case "mat rows/setters/pp" `Quick
            test_mat_of_rows_and_setters;
          Alcotest.test_case "of_diag/scale/add" `Quick
            test_mat_of_diag_identity_scale;
        ] );
      ( "svd",
        [
          Alcotest.test_case "reconstruct" `Quick test_svd_reconstruct;
          Alcotest.test_case "orthonormal" `Quick test_svd_orthonormal_factors;
          Alcotest.test_case "sorted" `Quick test_svd_values_sorted_nonnegative;
          Alcotest.test_case "diagonal" `Quick test_svd_diag_known;
          Alcotest.test_case "rank deficient" `Quick test_svd_rank_deficient;
          Alcotest.test_case "pseudo inverse" `Quick test_svd_pseudo_inverse;
          Alcotest.test_case "min norm = qr" `Quick test_svd_min_norm_matches_qr;
          Alcotest.test_case "matches eigen" `Quick
            test_svd_singular_values_match_eigen;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
