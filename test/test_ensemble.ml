(* Tests for lib/ensemble: evidence scoring closed forms, softmax
   weight degeneracies (single member, ties, -inf, Occam pruning),
   state codec round-trips and corruption refusal, the decomposed
   combine fold, the crash-safe .bmfe store, and the manager's
   two-phase score/commit canary flow. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let checkf msg expected got =
  Alcotest.(check (float 1e-12)) msg expected got

let rng = Stats.Rng.create 20160905

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bmf-ensemble-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists root then rm root;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists root then rm root)
    (fun () -> f root)

let meta_a =
  { Serving.Artifact.circuit = "amp"; metric = "gain"; scale = "quick"; seed = 1 }

let meta_b = { meta_a with Serving.Artifact.seed = 2 }

let meta_c = { meta_a with Serving.Artifact.seed = 3 }

(* ------------------------------------------------------------------ *)
(* Evidence                                                            *)

let test_log_density_closed_form () =
  (* ln N(x; mu, sigma^2) = -ln(sigma*sqrt(2*pi)) - (x-mu)^2/(2 sigma^2) *)
  List.iter
    (fun (mean, std, x) ->
      let expected =
        -.log (std *. sqrt (2. *. Float.pi))
        -. (((x -. mean) ** 2.) /. (2. *. std *. std))
      in
      checkf
        (Printf.sprintf "log N(%g; %g, %g^2)" x mean std)
        expected
        (Ensemble.Evidence.log_density ~mean ~std x))
    [ (0., 1., 0.); (0., 1., 2.5); (3., 0.25, 2.9); (-7., 10., 40.) ]

let test_log_density_never_nan () =
  List.iter
    (fun (mean, std, x) ->
      let d = Ensemble.Evidence.log_density ~mean ~std x in
      check_bool "degenerate density is -inf, not NaN" true
        (d = Float.neg_infinity))
    [
      (0., 0., 1.);
      (0., -1., 1.);
      (Float.nan, 1., 0.);
      (0., Float.nan, 0.);
      (0., 1., Float.nan);
      (Float.infinity, 1., 0.);
      (0., 1., Float.infinity);
    ]

let test_score_sums_in_order () =
  let means = [| 0.; 1.; -2. |] in
  let stds = [| 1.; 0.5; 2. |] in
  let f = [| 0.1; 0.9; -1.5 |] in
  let expected =
    Ensemble.Evidence.log_density ~mean:means.(0) ~std:stds.(0) f.(0)
    +. Ensemble.Evidence.log_density ~mean:means.(1) ~std:stds.(1) f.(1)
    +. Ensemble.Evidence.log_density ~mean:means.(2) ~std:stds.(2) f.(2)
  in
  check_bool "score equals the left-to-right fold bit-for-bit" true
    (Float.equal expected (Ensemble.Evidence.score ~means ~stds f));
  match Ensemble.Evidence.score ~means ~stds [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

(* ------------------------------------------------------------------ *)
(* Weights: the degenerate cases that must never produce NaN           *)

let sum = Array.fold_left ( +. ) 0.

let test_weights_single_member () =
  let w = Ensemble.Weights.compute [| -123.4 |] in
  check_int "one member" 1 (Array.length w);
  checkf "sole member carries all weight" 1. w.(0)

let test_weights_all_equal () =
  List.iter
    (fun s ->
      let w = Ensemble.Weights.compute [| s; s; s; s |] in
      Array.iter (fun wi -> checkf "tie splits uniformly" 0.25 wi) w;
      checkf "sums to 1" 1. (sum w))
    [ 0.; -1e6; 42.; -1e300 ]

let test_weights_neg_infinity_never_nan () =
  let w = Ensemble.Weights.compute [| 0.; Float.neg_infinity; -1. |] in
  Array.iter
    (fun wi -> check_bool "no NaN weight" false (Float.is_nan wi))
    w;
  checkf "-inf member gets exactly 0" 0. w.(1);
  checkf "sums to 1" 1. (sum w);
  (* every member at -inf: uniform, still no NaN *)
  let all_dead =
    Ensemble.Weights.compute
      [| Float.neg_infinity; Float.neg_infinity; Float.neg_infinity |]
  in
  Array.iter
    (fun wi ->
      check_bool "no NaN weight" false (Float.is_nan wi);
      checkf "uniform fallback" (1. /. 3.) wi)
    all_dead;
  checkf "sums to 1" 1. (sum all_dead)

let test_weights_sum_within_1e12 () =
  for _ = 1 to 50 do
    let n = 1 + Stats.Rng.int rng 8 in
    let scores =
      Array.init n (fun _ -> 200. *. (Stats.Rng.float rng -. 0.5))
    in
    let w = Ensemble.Weights.compute scores in
    check_bool "sum within 1e-12 of 1" true (Float.abs (sum w -. 1.) <= 1e-12);
    Array.iter
      (fun wi -> check_bool "weight in [0,1]" true (wi >= 0. && wi <= 1.))
      w
  done

let test_weights_occam_pruning_deterministic () =
  let scores = [| 0.; -1.; -30. |] in
  let w = Ensemble.Weights.compute ~occam:1e-6 scores in
  checkf "member far below the window is pruned to exactly 0" 0. w.(2);
  check_bool "survivors keep positive weight" true (w.(0) > 0. && w.(1) > 0.);
  checkf "renormalized sum" 1. (sum w);
  (* pure function: byte-identical on repeat *)
  let w' = Ensemble.Weights.compute ~occam:1e-6 scores in
  check_bool "deterministic" true (Array.for_all2 Float.equal w w');
  (* occam = 0 disables the window *)
  let open_w = Ensemble.Weights.compute ~occam:0. scores in
  check_bool "window off keeps the tail member" true (open_w.(2) > 0.);
  (* the best member survives any window *)
  let tight = Ensemble.Weights.compute ~occam:1. scores in
  checkf "ratio-1 window leaves only the best" 1. tight.(0)

(* ------------------------------------------------------------------ *)
(* State: membership, canary prior, evidence reset, codec              *)

let state_ab () =
  let s = Ensemble.State.create "pair" in
  let s =
    match Ensemble.State.add s meta_a with
    | Ok s -> s
    | Error e -> Alcotest.failf "add a: %s" e
  in
  match Ensemble.State.add s meta_b with
  | Ok s -> s
  | Error e -> Alcotest.failf "add b: %s" e

let test_state_add_and_canary_prior () =
  let s = state_ab () in
  check_int "two members" 2 (Array.length s.Ensemble.State.members);
  checkf "founding member at log prior 0" 0.
    s.Ensemble.State.members.(0).Ensemble.State.log_prior;
  checkf "canary at ln 1e-6" (log 1e-6)
    s.Ensemble.State.members.(1).Ensemble.State.log_prior;
  check_bool "canary constant matches" true
    (Float.equal Ensemble.State.canary_log_prior (log 1e-6));
  (match Ensemble.State.add s meta_a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate member accepted");
  (* fresh state: founding member dominates, canary is ~1e-6 *)
  let w = Ensemble.State.weights s in
  check_bool "canary starts near zero" true (w.(1) < 2e-6);
  check_bool "founder starts near one" true (w.(0) > 0.999)

let test_state_record_and_reset () =
  let s = state_ab () in
  let s = Ensemble.State.record s [| (4.5, 10); (-2.5, 10) |] in
  checkf "evidence accumulated" 4.5
    s.Ensemble.State.members.(0).Ensemble.State.log_ev;
  check_int "points counted" 10
    s.Ensemble.State.members.(0).Ensemble.State.count;
  let s = Ensemble.State.record s [| (0., 0); (1.5, 5) |] in
  checkf "unavailable member carries (0, 0)" 4.5
    s.Ensemble.State.members.(0).Ensemble.State.log_ev;
  check_int "its count is unchanged" 10
    s.Ensemble.State.members.(0).Ensemble.State.count;
  checkf "other member advanced" (-1.)
    s.Ensemble.State.members.(1).Ensemble.State.log_ev;
  check_int "its points" 15 s.Ensemble.State.members.(1).Ensemble.State.count;
  (match Ensemble.State.record s [| (1., 1) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted");
  (* membership change resets every member's evidence *)
  match Ensemble.State.add s meta_c with
  | Error e -> Alcotest.failf "add c: %s" e
  | Ok s ->
      Array.iter
        (fun (m : Ensemble.State.member) ->
          checkf "evidence reset on add" 0. m.log_ev;
          check_int "count reset on add" 0 m.count)
        s.Ensemble.State.members

let test_state_codec_roundtrip_and_corruption () =
  let s =
    Ensemble.State.record (state_ab ()) [| (12.25, 40); (-3.125, 40) |]
  in
  let bytes = Ensemble.State.to_binary_string s in
  check_string "magic leads the payload" "BMFENS01" (String.sub bytes 0 8);
  (match Ensemble.State.of_binary_string bytes with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok s' ->
      check_bool "round-trip is exact" true (s' = s);
      check_bool "re-encode is byte-identical" true
        (String.equal bytes (Ensemble.State.to_binary_string s')));
  (* one-byte corruption anywhere must be refused, not misread *)
  List.iter
    (fun at ->
      let b = Bytes.of_string bytes in
      Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x40));
      match Ensemble.State.of_binary_string (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "corruption at byte %d accepted" at)
    [ 0; 9; String.length bytes / 2; String.length bytes - 1 ];
  match Ensemble.State.of_binary_string "BMFENS01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload accepted"

(* ------------------------------------------------------------------ *)
(* Predictor.combine: the normative decomposition fold                 *)

let test_combine_decomposition () =
  let weights = [| 0.75; 0.25 |] in
  let means = [| [| 1.; 10. |]; [| 3.; -10. |] |] in
  let stds = [| [| 0.1; 1. |]; [| 0.3; 2. |] |] in
  let mean, within, between = Ensemble.Predictor.combine ~weights ~means ~stds in
  (* hand-computed per point *)
  for i = 0 to 1 do
    let mu = (0.75 *. means.(0).(i)) +. (0.25 *. means.(1).(i)) in
    let w_var =
      (0.75 *. stds.(0).(i) *. stds.(0).(i))
      +. (0.25 *. stds.(1).(i) *. stds.(1).(i))
    in
    let b_var =
      (0.75 *. ((means.(0).(i) -. mu) ** 2.))
      +. (0.25 *. ((means.(1).(i) -. mu) ** 2.))
    in
    checkf (Printf.sprintf "mean %d" i) mu mean.(i);
    checkf (Printf.sprintf "within %d" i) w_var within.(i);
    checkf (Printf.sprintf "between %d" i) b_var between.(i)
  done

let test_combine_skips_zero_weight () =
  (* the dead member's arrays are never read: empty arrays prove it *)
  let mean, within, between =
    Ensemble.Predictor.combine ~weights:[| 1.; 0. |]
      ~means:[| [| 2.; 4. |]; [||] |]
      ~stds:[| [| 0.5; 0.5 |]; [||] |]
  in
  checkf "mean is the sole active member's" 2. mean.(0);
  checkf "within is its variance" 0.25 within.(0);
  checkf "between collapses to 0" 0. between.(0);
  check_int "per-point outputs" 2 (Array.length between);
  (match
     Ensemble.Predictor.combine ~weights:[| 0.; 0. |]
       ~means:[| [||]; [||] |] ~stds:[| [||]; [||] |]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no-active-member combine accepted");
  match
    Ensemble.Predictor.combine ~weights:[| 1. |] ~means:[| [| 1. |]; [||] |]
      ~stds:[| [| 1. |] |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

(* ------------------------------------------------------------------ *)
(* Store: .bmfe persistence                                            *)

let test_store_save_load_list () =
  with_temp_root @@ fun root ->
  let s = Ensemble.State.record (state_ab ()) [| (1.5, 3); (0.5, 3) |] in
  let file = Ensemble.Store.save ~root s in
  check_bool "file carries the .bmfe extension" true
    (Filename.check_suffix file Ensemble.Store.extension);
  (match Ensemble.Store.load ~root "pair" with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok s' -> check_bool "load round-trips the state" true (s' = s));
  check_bool "find locates it" true (Ensemble.Store.find ~root "pair" <> None);
  (match Ensemble.Store.list ~root with
  | [ (f, Ok s') ] ->
      check_string "listed file" file f;
      check_bool "listed state" true (s' = s)
  | l -> Alcotest.failf "expected one clean entry, got %d" (List.length l));
  (* .bmfe files are invisible to the artifact store's listing *)
  check_int "artifact listing ignores ensembles" 0
    (List.length (Serving.Store.list ~root));
  (* the not-found error names the directory and the expected file *)
  match Ensemble.Store.load ~root "missing" with
  | Ok _ -> Alcotest.fail "missing ensemble loaded"
  | Error e ->
      check_bool "error names the root" true
        (let re = Str.regexp_string root in
         try
           ignore (Str.search_forward re e 0);
           true
         with Not_found -> false)

let test_store_distinct_names_never_collide () =
  (* sanitization maps both to the same safe stem; the digest must keep
     their files apart *)
  let f1 = Ensemble.Store.filename "a/b" in
  let f2 = Ensemble.Store.filename "a_b" in
  check_bool "sanitized homographs get distinct files" true (f1 <> f2);
  with_temp_root @@ fun root ->
  ignore (Ensemble.Store.save ~root (Ensemble.State.create "a/b"));
  ignore (Ensemble.Store.save ~root (Ensemble.State.create "a_b"));
  check_int "both persisted" 2 (List.length (Ensemble.Store.list ~root))

let test_store_corrupt_listed_not_loaded () =
  with_temp_root @@ fun root ->
  let file = Ensemble.Store.save ~root (state_ab ()) in
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  close_in ic;
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 file in
  seek_out oc (len / 2);
  output_char oc '\xff';
  close_out oc;
  (match Ensemble.Store.load ~root "pair" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt ensemble loaded");
  match Ensemble.Store.list ~root with
  | [ (_, Error _) ] -> ()
  | _ -> Alcotest.fail "corrupt entry not surfaced by list"

(* ------------------------------------------------------------------ *)
(* Manager: published view and the two-phase canary flow               *)

(* A tiny fitted artifact pair over one shared basis: [good] is fit on
   the truth, [bad] on a systematically wrong response, so scoring real
   data must favor [good]. *)
let synth_artifact ~meta ~truth ~rng ~k basis =
  let r = Polybasis.Basis.dim basis in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (0.01 *. Stats.Rng.gaussian rng))
  in
  let prior = Bmf.Prior.nonzero_mean (Array.map (fun c -> Some c) truth) in
  let hyper, _ = Bmf.Hyper.select ~rng ~g ~f ~prior () in
  Serving.Artifact.of_fit ~meta ~basis ~prior ~hyper ~g ~f ()

let test_manager_canary_overtakes () =
  with_temp_root @@ fun root ->
  let basis = Polybasis.Basis.linear 6 in
  let m = Polybasis.Basis.size basis in
  let truth = Array.init m (fun i -> 1. /. float_of_int (i + 1)) in
  let wrong = Array.map (fun c -> c +. 3.) truth in
  let incumbent = synth_artifact ~meta:meta_a ~truth:wrong ~rng ~k:30 basis in
  let canary = synth_artifact ~meta:meta_b ~truth ~rng ~k:30 basis in
  ignore (Serving.Store.save ~root incumbent);
  ignore (Serving.Store.save ~root canary);
  let s = Ensemble.State.create "flip" in
  let s = Result.get_ok (Ensemble.State.add s meta_a) in
  let s = Result.get_ok (Ensemble.State.add s meta_b) in
  ignore (Ensemble.Store.save ~root s);
  let mgr = Ensemble.Manager.create ~root in
  check_int "clean load" 0 (List.length (Ensemble.Manager.load_all mgr));
  let s = Option.get (Ensemble.Manager.find mgr "flip") in
  let w0 = Ensemble.State.weights s in
  check_bool "canary starts near zero" true (w0.(1) < 2e-6);
  (* containing finds the ensemble from either member's key *)
  check_int "containing (incumbent)" 1
    (List.length (Ensemble.Manager.containing mgr meta_a));
  check_int "containing (canary)" 1
    (List.length (Ensemble.Manager.containing mgr meta_b));
  check_int "containing (stranger)" 0
    (List.length (Ensemble.Manager.containing mgr meta_c));
  let predictor_of meta =
    match Serving.Store.load ~root meta with
    | Ok a -> Some (Serving.Predictor.of_artifact a)
    | Error _ -> None
  in
  (* feed batches drawn from the truth: the canary's evidence grows,
     the incumbent's shrinks, and weight provably crosses over *)
  let r = Polybasis.Basis.dim basis in
  let rounds = 12 in
  let final =
    List.fold_left
      (fun s _ ->
        let xs = Stats.Sampling.monte_carlo rng ~k:8 ~r in
        let g = Polybasis.Basis.design_matrix basis xs in
        let f =
          Array.init 8 (fun i ->
              Linalg.Vec.dot (Linalg.Mat.row g i) truth
              +. (0.01 *. Stats.Rng.gaussian rng))
        in
        let scored = Ensemble.Manager.score ~predictor_of s ~xs ~f in
        Ensemble.Manager.commit mgr scored;
        scored)
      s
      (List.init rounds (fun i -> i))
  in
  check_int "every point scored" (rounds * 8)
    final.Ensemble.State.members.(1).Ensemble.State.count;
  let w = Ensemble.State.weights final in
  check_bool
    (Printf.sprintf "canary overtook the incumbent (w = %.6f)" w.(1))
    true (w.(1) > 0.9);
  (* commit published and persisted the advanced state *)
  let published = Option.get (Ensemble.Manager.find mgr "flip") in
  check_bool "published view advanced" true (published = final);
  (match Ensemble.Store.load ~root "flip" with
  | Error e -> Alcotest.failf "reload: %s" e
  | Ok disk -> check_bool "persisted state advanced" true (disk = final));
  (* a fresh manager (the post-crash daemon) sees the same weights *)
  let mgr2 = Ensemble.Manager.create ~root in
  ignore (Ensemble.Manager.load_all mgr2);
  let recovered = Option.get (Ensemble.Manager.find mgr2 "flip") in
  check_bool "weight state survives reload" true (recovered = final)

let test_manager_score_unavailable_member_is_neutral () =
  with_temp_root @@ fun root ->
  let s = state_ab () in
  ignore (Ensemble.Store.save ~root s);
  let mgr = Ensemble.Manager.create ~root in
  ignore (Ensemble.Manager.load_all mgr);
  let s = Option.get (Ensemble.Manager.find mgr "pair") in
  let xs = Linalg.Mat.of_rows [ [| 0.5 |]; [| -0.5 |] ] in
  let scored =
    Ensemble.Manager.score ~predictor_of:(fun _ -> None) s ~xs ~f:[| 1.; 2. |]
  in
  Array.iter
    (fun (m : Ensemble.State.member) ->
      checkf "no predictor, no evidence" 0. m.log_ev;
      check_int "no predictor, no points" 0 m.count)
    scored.Ensemble.State.members

let test_manager_reload_picks_up_and_drops () =
  with_temp_root @@ fun root ->
  let mgr = Ensemble.Manager.create ~root in
  ignore (Ensemble.Manager.load_all mgr);
  check_int "empty root, empty view" 0
    (List.length (Ensemble.Manager.list mgr));
  (* an out-of-band create (the CLI against a live daemon's store) *)
  ignore (Ensemble.Store.save ~root (state_ab ()));
  (match Ensemble.Manager.reload mgr "pair" with
  | Error e -> Alcotest.failf "reload: %s" e
  | Ok s -> check_string "picked up" "pair" s.Ensemble.State.name);
  check_int "published" 1 (List.length (Ensemble.Manager.list mgr));
  (* a vanished file drops it from the view *)
  Sys.remove (Option.get (Ensemble.Store.find ~root "pair"));
  (match Ensemble.Manager.reload mgr "pair" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "vanished ensemble reloaded");
  check_int "dropped from the view" 0
    (List.length (Ensemble.Manager.list mgr))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ensemble"
    [
      ( "evidence",
        [
          Alcotest.test_case "gaussian closed form" `Quick
            test_log_density_closed_form;
          Alcotest.test_case "degenerate inputs never NaN" `Quick
            test_log_density_never_nan;
          Alcotest.test_case "batch score sums in order" `Quick
            test_score_sums_in_order;
        ] );
      ( "weights",
        [
          Alcotest.test_case "single member" `Quick test_weights_single_member;
          Alcotest.test_case "all-equal evidence" `Quick
            test_weights_all_equal;
          Alcotest.test_case "-inf evidence never NaN" `Quick
            test_weights_neg_infinity_never_nan;
          Alcotest.test_case "sum within 1e-12" `Quick
            test_weights_sum_within_1e12;
          Alcotest.test_case "occam pruning deterministic" `Quick
            test_weights_occam_pruning_deterministic;
        ] );
      ( "state",
        [
          Alcotest.test_case "add, canary prior, duplicates" `Quick
            test_state_add_and_canary_prior;
          Alcotest.test_case "record and reset-on-add" `Quick
            test_state_record_and_reset;
          Alcotest.test_case "codec round-trip and corruption" `Quick
            test_state_codec_roundtrip_and_corruption;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "decomposed combine" `Quick
            test_combine_decomposition;
          Alcotest.test_case "zero-weight members skipped" `Quick
            test_combine_skips_zero_weight;
        ] );
      ( "store",
        [
          Alcotest.test_case "save/load/list" `Quick test_store_save_load_list;
          Alcotest.test_case "distinct names never collide" `Quick
            test_store_distinct_names_never_collide;
          Alcotest.test_case "corruption refused" `Quick
            test_store_corrupt_listed_not_loaded;
        ] );
      ( "manager",
        [
          Alcotest.test_case "canary overtakes on favoring evidence" `Quick
            test_manager_canary_overtakes;
          Alcotest.test_case "unavailable member scores neutral" `Quick
            test_manager_score_unavailable_member_is_neutral;
          Alcotest.test_case "reload picks up and drops" `Quick
            test_manager_reload_picks_up_and_drops;
        ] );
    ]
