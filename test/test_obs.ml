(* Tests for the observability layer: the monotonic clock clamp, span
   nesting and ordering, histogram bucket boundaries, the Chrome
   trace-event JSON export (parsed back with the serving JSON codec),
   the metrics registry and exposition, and the bit-identical guarantee:
   a BMF fit computes exactly the same coefficients with the sinks on or
   off. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let checkf = Alcotest.(check (float 1e-12))

(* Every test starts from dead sinks and a zeroed registry, and leaves
   them that way: both are process-wide. *)
let fresh () =
  Obs.Trace.stop ();
  Obs.Trace.clear ();
  Obs.Trace.set_limit 200_000;
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  Obs.Clock.reset_source ()

(* A fake clock advancing one second per reading. *)
let install_step_clock () =
  let t = ref 0. in
  Obs.Clock.set_source (fun () ->
      t := !t +. 1.;
      !t)

(* ------------------------------------------------------------------ *)
(* Clock. *)

let test_clock_monotonic () =
  fresh ();
  (* a source that jumps backwards must still yield a non-decreasing
     reading *)
  let readings = ref [ 5.; 3.; 7.; 2.; 9. ] in
  Obs.Clock.set_source (fun () ->
      match !readings with
      | [] -> 9.
      | r :: rest ->
          readings := rest;
          r);
  let out = List.init 5 (fun _ -> Obs.Clock.now_s ()) in
  List.iter2 (checkf "clamped") [ 5.; 5.; 7.; 7.; 9. ] out;
  Obs.Clock.reset_source ();
  let a = Obs.Clock.now_s () in
  let b = Obs.Clock.now_s () in
  check_bool "monotonic clock non-decreasing" true (b >= a);
  (* the scale relation is only exact under a frozen source: two live
     readings differ by the nanoseconds between the calls *)
  Obs.Clock.set_source (fun () -> 123.456789);
  checkf "now_us is now_s scaled" (1e6 *. Obs.Clock.now_s ())
    (Obs.Clock.now_us ());
  Obs.Clock.reset_source ()

(* ------------------------------------------------------------------ *)
(* Spans. *)

let complete_events () =
  List.filter_map
    (function Obs.Trace.Complete _ as e -> Some e | _ -> None)
    (Obs.Trace.events ())

let test_span_nesting () =
  fresh ();
  install_step_clock ();
  Obs.Trace.start ();
  Obs.Trace.with_span ~cat:"test" "parent" (fun parent ->
      Obs.Trace.set_attr parent "who" (Obs.Trace.Str "outer");
      Obs.Trace.with_span ~cat:"test" "child" (fun child ->
          Obs.Trace.set_attr child "n" (Obs.Trace.Int 7)));
  Obs.Trace.stop ();
  match complete_events () with
  | [ Obs.Trace.Complete child; Obs.Trace.Complete parent ] ->
      (* close order: the child is recorded before the parent *)
      check_string "child first" "child" child.name;
      check_string "parent second" "parent" parent.name;
      check_int "parent depth" 0 parent.depth;
      check_int "child depth" 1 child.depth;
      check_bool "parent has no parent" true (parent.parent = None);
      check_bool "child's parent is the parent span" true
        (child.parent = Some parent.id);
      (* the step clock reads 1,2,3,4 s at open/open/close/close *)
      checkf "parent start" 1e6 parent.start_us;
      checkf "child start" 2e6 child.start_us;
      checkf "child duration" 1e6 child.dur_us;
      checkf "parent duration" 3e6 parent.dur_us;
      check_string "child attr recorded" "test" child.cat;
      check_bool "child attrs" true (child.attrs = [ ("n", Obs.Trace.Int 7) ])
  | evs -> Alcotest.failf "expected 2 complete events, got %d" (List.length evs)

let test_span_sibling_order () =
  fresh ();
  install_step_clock ();
  Obs.Trace.start ();
  Obs.Trace.with_span "root" (fun _ ->
      Obs.Trace.with_span "first" (fun _ -> ());
      Obs.Trace.with_span "second" (fun _ -> ());
      Obs.Trace.instant ~cat:"test" "tick");
  Obs.Trace.stop ();
  let names =
    List.map
      (function
        | Obs.Trace.Complete c -> c.name
        | Obs.Trace.Instant i -> "i:" ^ i.name)
      (Obs.Trace.events ())
  in
  check_bool "events oldest first, children before parents" true
    (names = [ "first"; "second"; "i:tick"; "root" ]);
  match complete_events () with
  | [ Obs.Trace.Complete first; Obs.Trace.Complete second; Obs.Trace.Complete root ]
    ->
      check_bool "siblings share the root parent" true
        (first.parent = Some root.id && second.parent = Some root.id);
      check_int "sibling depth" 1 first.depth;
      check_int "sibling depth" 1 second.depth;
      check_bool "sibling ordering by start time" true
        (first.start_us < second.start_us)
  | _ -> Alcotest.fail "expected 3 complete events"

let test_span_disabled_is_inert () =
  fresh ();
  (* no start: the dummy span records nothing and attrs are dropped *)
  Obs.Trace.with_span "ghost" (fun sp ->
      Obs.Trace.set_attr sp "k" (Obs.Trace.Int 1));
  Obs.Trace.instant "ghost-tick";
  check_int "nothing recorded" 0 (List.length (Obs.Trace.events ()));
  check_bool "still disabled" false (Obs.Trace.enabled ())

let test_span_survives_exception () =
  fresh ();
  install_step_clock ();
  Obs.Trace.start ();
  (try
     Obs.Trace.with_span "outer" (fun _ ->
         Obs.Trace.with_span "boom" (fun _ -> failwith "boom"))
   with Failure _ -> ());
  Obs.Trace.stop ();
  let names =
    List.filter_map
      (function Obs.Trace.Complete c -> Some c.name | _ -> None)
      (Obs.Trace.events ())
  in
  check_bool "both spans closed despite the raise" true
    (names = [ "boom"; "outer" ])

let test_span_buffer_limit () =
  fresh ();
  Obs.Trace.start ();
  Obs.Trace.set_limit 3;
  for i = 1 to 5 do
    Obs.Trace.instant (Printf.sprintf "e%d" i)
  done;
  Obs.Trace.stop ();
  check_int "kept up to the limit" 3 (List.length (Obs.Trace.events ()));
  check_int "excess counted as dropped" 2 (Obs.Trace.dropped ())

(* ------------------------------------------------------------------ *)
(* Trace JSON export, parsed back with the serving JSON codec. *)

let member_exn name j =
  match Serving.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let test_trace_json_roundtrip () =
  fresh ();
  install_step_clock ();
  Obs.Trace.start ();
  Obs.Trace.with_span ~cat:"outer" "fit \"quoted\"" (fun sp ->
      Obs.Trace.set_attr sp "ok" (Obs.Trace.Bool true);
      Obs.Trace.set_attr sp "k" (Obs.Trace.Int 42);
      Obs.Trace.set_attr sp "err" (Obs.Trace.Float 0.125);
      Obs.Trace.set_attr sp "tag" (Obs.Trace.Str "a\nb");
      Obs.Trace.with_span "inner" (fun _ -> ());
      Obs.Trace.instant ~cat:"log" "progress");
  Obs.Trace.stop ();
  let json = Obs.Trace.export_json () in
  let doc =
    match Serving.Json.of_string json with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "export is not valid JSON: %s" e
  in
  check_string "displayTimeUnit" "ms"
    (Option.get (Serving.Json.to_str (member_exn "displayTimeUnit" doc)));
  let events =
    Option.get (Serving.Json.to_arr (member_exn "traceEvents" doc))
  in
  check_int "three events exported" 3 (List.length events);
  List.iter
    (fun ev ->
      (* every event carries the mandatory trace-event fields *)
      ignore (Option.get (Serving.Json.to_str (member_exn "name" ev)));
      ignore (Option.get (Serving.Json.to_str (member_exn "cat" ev)));
      ignore (Option.get (Serving.Json.to_float (member_exn "ts" ev)));
      check_int "pid" 1 (Option.get (Serving.Json.to_int (member_exn "pid" ev))))
    events;
  let by_ph ph =
    List.filter
      (fun ev ->
        Serving.Json.to_str (member_exn "ph" ev) = Some ph)
      events
  in
  check_int "two complete events" 2 (List.length (by_ph "X"));
  check_int "one instant event" 1 (List.length (by_ph "i"));
  let outer =
    List.find
      (fun ev ->
        Serving.Json.to_str (member_exn "name" ev) = Some "fit \"quoted\"")
      events
  in
  let args = member_exn "args" outer in
  check_bool "bool attr" true
    (Serving.Json.member "ok" args = Some (Serving.Json.Bool true));
  check_int "int attr" 42
    (Option.get (Serving.Json.to_int (member_exn "k" args)));
  checkf "float attr" 0.125
    (Option.get (Serving.Json.to_float (member_exn "err" args)));
  check_string "escaped string attr" "a\nb"
    (Option.get (Serving.Json.to_str (member_exn "tag" args)));
  let outer_id = Option.get (Serving.Json.to_int (member_exn "span_id" args)) in
  let inner =
    List.find
      (fun ev -> Serving.Json.to_str (member_exn "name" ev) = Some "inner")
      events
  in
  let inner_args = member_exn "args" inner in
  check_int "child parent_id points at the outer span" outer_id
    (Option.get (Serving.Json.to_int (member_exn "parent_id" inner_args)));
  check_int "child depth" 1
    (Option.get (Serving.Json.to_int (member_exn "depth" inner_args)))

(* ------------------------------------------------------------------ *)
(* Metrics. *)

let test_labeled_series () =
  fresh ();
  let ca =
    Obs.Metrics.counter ~help:"per-model hits"
      ~labels:[ ("model", "amp/gain") ]
      "test_labeled_total"
  in
  let cb =
    Obs.Metrics.counter ~labels:[ ("model", "dac/enob") ] "test_labeled_total"
  in
  let ca' =
    Obs.Metrics.counter ~labels:[ ("model", "amp/gain") ] "test_labeled_total"
  in
  check_bool "same (name, labels) is the same series" true (ca == ca');
  check_bool "different labels are different series" true (ca != cb);
  check_bool "find_counter with labels" true
    (Obs.Metrics.find_counter ~labels:[ ("model", "dac/enob") ]
       "test_labeled_total"
    = Some cb);
  check_bool "unlabeled lookup misses labeled series" true
    (Obs.Metrics.find_counter "test_labeled_total" = None);
  Obs.Metrics.enable ();
  Obs.Metrics.inc ca;
  Obs.Metrics.inc ~by:2. cb;
  Obs.Metrics.disable ();
  let text = Obs.Metrics.to_prometheus () in
  let lines = String.split_on_char '\n' text in
  let has line = List.exists (String.equal line) lines in
  (* one family header, then every series *)
  check_bool "single HELP line" true
    (has "# HELP test_labeled_total per-model hits");
  check_bool "single TYPE line" true (has "# TYPE test_labeled_total counter");
  check_int "exactly one TYPE line for the family" 1
    (List.length
       (List.filter (String.equal "# TYPE test_labeled_total counter") lines));
  check_bool "first series" true
    (has "test_labeled_total{model=\"amp/gain\"} 1");
  check_bool "second series" true
    (has "test_labeled_total{model=\"dac/enob\"} 2");
  check_int "family enumerates both series" 2
    (List.length (Obs.Metrics.family "test_labeled_total"))

let test_label_escaping_and_names () =
  fresh ();
  (* escaping: backslash, quote, newline become two-character escapes *)
  Alcotest.(check string)
    "escape_label_value" "a\\\\b\\\"c\\nd"
    (Obs.Metrics.escape_label_value "a\\b\"c\nd");
  let hostile = Obs.Metrics.gauge
      ~labels:[ ("model", "evil\"quote\\back\nline") ]
      "test_escaped_gauge"
  in
  Obs.Metrics.enable ();
  Obs.Metrics.set hostile 1.;
  Obs.Metrics.disable ();
  let text = Obs.Metrics.to_prometheus () in
  let has sub =
    try
      ignore (Str.search_forward (Str.regexp_string sub) text 0);
      true
    with Not_found -> false
  in
  check_bool "hostile label value escaped in exposition" true
    (has "test_escaped_gauge{model=\"evil\\\"quote\\\\back\\nline\"} 1");
  check_bool "no raw newline inside the label" false
    (has "evil\"quote");
  (* name sanitizing *)
  Alcotest.(check string)
    "spaces and punctuation" "a_b_c" (Obs.Metrics.sanitize_name "a b-c");
  Alcotest.(check string)
    "leading digit" "_9lives" (Obs.Metrics.sanitize_name "9lives");
  Alcotest.(check string) "empty" "_" (Obs.Metrics.sanitize_name "");
  let s = Obs.Metrics.sanitize_name "weird!name@2" in
  check_bool "sanitized names are valid" true (Obs.Metrics.valid_name s);
  Alcotest.(check string) "idempotent" s (Obs.Metrics.sanitize_name s);
  check_bool "valid_name accepts colons" true
    (Obs.Metrics.valid_name "ns:sub_total");
  check_bool "valid_name rejects spaces" false (Obs.Metrics.valid_name "a b");
  (* the reserved histogram label is refused *)
  check_bool "le label rejected on histograms" true
    (try
       ignore
         (Obs.Metrics.histogram ~labels:[ ("le", "1") ] "test_le_hist");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Events. *)

let test_events_ring () =
  Obs.Events.disable ();
  Obs.Events.clear ();
  Obs.Events.set_capacity 4;
  Fun.protect
    ~finally:(fun () ->
      Obs.Events.disable ();
      Obs.Events.clear ();
      Obs.Events.set_capacity 512)
  @@ fun () ->
  Obs.Events.emit "dead_while_disabled";
  check_int "disabled emits nothing" 0 (Obs.Events.emitted ());
  Obs.Events.enable ();
  for i = 0 to 6 do
    Obs.Events.emit
      ~fields:[ ("i", Obs.Trace.Int i) ]
      (if i mod 2 = 0 then "tick" else "tock")
  done;
  let evs, total = Obs.Events.snapshot () in
  check_int "all emits counted" 7 total;
  check_int "ring keeps the newest capacity" 4 (List.length evs);
  check_int "drops counted" 3 (Obs.Events.dropped ());
  (* oldest-first, and seq numbers survive the drops *)
  let seqs = List.map (fun (e : Obs.Events.event) -> e.seq) evs in
  check_bool "oldest first with stable seqs" true (seqs = [ 3; 4; 5; 6 ]);
  check_bool "wall timestamps monotone" true
    (let rec mono = function
       | (a : Obs.Events.event) :: (b :: _ as rest) ->
           a.ts <= b.ts && mono rest
       | _ -> true
     in
     mono evs);
  (* the JSON dump is parseable and complete *)
  match Serving.Json.of_string (Obs.Events.to_json ()) with
  | Error msg -> Alcotest.failf "events json: %s" msg
  | Ok doc ->
      check_int "emitted in json" 7
        (Option.get (Serving.Json.to_int (member_exn "emitted" doc)));
      check_int "dropped in json" 3
        (Option.get (Serving.Json.to_int (member_exn "dropped" doc)));
      let arr =
        Option.get (Serving.Json.to_arr (member_exn "events" doc))
      in
      check_int "4 events serialized" 4 (List.length arr);
      let kinds =
        List.map
          (fun e ->
            Option.get (Serving.Json.to_str (member_exn "kind" e)))
          arr
      in
      check_bool "kinds preserved oldest-first" true
        (kinds = [ "tock"; "tick"; "tock"; "tick" ])

let test_metrics_gating () =
  fresh ();
  let c = Obs.Metrics.counter "test_gating_total" in
  let g = Obs.Metrics.gauge "test_gating_gauge" in
  Obs.Metrics.inc c;
  Obs.Metrics.set g 3.;
  checkf "counter dead while disabled" 0. (Obs.Metrics.counter_value c);
  check_bool "gauge dead while disabled" false (Obs.Metrics.gauge_is_set g);
  Obs.Metrics.enable ();
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:2.5 c;
  Obs.Metrics.set g 3.;
  Obs.Metrics.disable ();
  checkf "counter accumulates" 3.5 (Obs.Metrics.counter_value c);
  check_bool "gauge seen" true (Obs.Metrics.gauge_is_set g);
  checkf "gauge value" 3. (Obs.Metrics.gauge_value g);
  Obs.Metrics.reset ();
  checkf "reset zeroes counters" 0. (Obs.Metrics.counter_value c);
  check_bool "reset clears gauges" false (Obs.Metrics.gauge_is_set g)

let test_metrics_registry () =
  fresh ();
  let c = Obs.Metrics.counter "test_registry_total" in
  let c' = Obs.Metrics.counter "test_registry_total" in
  check_bool "re-registration returns the same metric" true (c == c');
  check_bool "kind mismatch rejected" true
    (try
       ignore (Obs.Metrics.gauge "test_registry_total");
       false
     with Invalid_argument _ -> true);
  check_bool "invalid name rejected" true
    (try
       ignore (Obs.Metrics.counter "bad name!");
       false
     with Invalid_argument _ -> true);
  check_bool "find_counter" true
    (Obs.Metrics.find_counter "test_registry_total" = Some c);
  check_bool "find_gauge misses a counter" true
    (Obs.Metrics.find_gauge "test_registry_total" = None)

let test_histogram_buckets () =
  fresh ();
  let h =
    Obs.Metrics.histogram ~buckets:[| 1.; 2.; 5. |] "test_hist_seconds"
  in
  Obs.Metrics.enable ();
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 6.0 ];
  Obs.Metrics.disable ();
  (* le semantics: a value equal to a bound lands in that bound's bucket *)
  let buckets = Obs.Metrics.histogram_buckets h in
  check_int "bucket count" 4 (Array.length buckets);
  let bound i = fst buckets.(i) and cnt i = snd buckets.(i) in
  checkf "bound 0" 1. (bound 0);
  checkf "bound 1" 2. (bound 1);
  checkf "bound 2" 5. (bound 2);
  check_bool "last bound is +Inf" true (bound 3 = infinity);
  check_int "le=1 holds 0.5 and 1.0" 2 (cnt 0);
  check_int "le=2 holds 1.5 and 2.0" 2 (cnt 1);
  check_int "le=5 holds 5.0" 1 (cnt 2);
  check_int "+Inf holds 6.0" 1 (cnt 3);
  checkf "sum" 16. (Obs.Metrics.histogram_sum h);
  check_int "count" 6 (Obs.Metrics.histogram_count h);
  (* Prometheus exposition is cumulative *)
  let text = Obs.Metrics.to_prometheus () in
  let has line =
    List.exists (String.equal line) (String.split_on_char '\n' text)
  in
  check_bool "TYPE line" true (has "# TYPE test_hist_seconds histogram");
  check_bool "cumulative le=1" true (has "test_hist_seconds_bucket{le=\"1\"} 2");
  check_bool "cumulative le=2" true (has "test_hist_seconds_bucket{le=\"2\"} 4");
  check_bool "cumulative le=5" true (has "test_hist_seconds_bucket{le=\"5\"} 5");
  check_bool "cumulative +Inf" true
    (has "test_hist_seconds_bucket{le=\"+Inf\"} 6");
  check_bool "sum line" true (has "test_hist_seconds_sum 16");
  check_bool "count line" true (has "test_hist_seconds_count 6")

let test_histogram_validation () =
  fresh ();
  check_bool "non-increasing bounds rejected" true
    (try
       ignore (Obs.Metrics.histogram ~buckets:[| 1.; 1. |] "test_bad_hist");
       false
     with Invalid_argument _ -> true);
  check_bool "empty bounds rejected" true
    (try
       ignore (Obs.Metrics.histogram ~buckets:[||] "test_bad_hist2");
       false
     with Invalid_argument _ -> true);
  let b = Obs.Metrics.latency_buckets in
  check_bool "latency buckets strictly increasing" true
    (Array.for_all
       (fun i -> b.(i) > b.(i - 1))
       (Array.init (Array.length b - 1) (fun i -> i + 1)))

let test_metrics_json () =
  fresh ();
  let c = Obs.Metrics.counter "test_json_total" in
  Obs.Metrics.enable ();
  Obs.Metrics.inc ~by:4. c;
  Obs.Metrics.disable ();
  let doc =
    match Serving.Json.of_string (Obs.Metrics.to_json ()) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  in
  let metrics =
    Option.get (Serving.Json.to_arr (member_exn "metrics" doc))
  in
  let entry =
    List.find
      (fun m ->
        Serving.Json.member "name" m = Some (Serving.Json.Str "test_json_total"))
      metrics
  in
  check_string "type field" "counter"
    (Option.get (Serving.Json.to_str (member_exn "type" entry)));
  checkf "value field" 4.
    (Option.get (Serving.Json.to_float (member_exn "value" entry)))

(* ------------------------------------------------------------------ *)
(* The contract that makes all of the above safe to ship: observability
   must not perturb the numbers. One BMF-PS fit on a synthetic problem,
   once with both sinks live and once with them off — every coefficient
   bit-identical. *)

let fit_once ~observe () =
  let rng = Stats.Rng.create 20130604 in
  (* K < M so the fit takes the Woodbury fast path, whose condition
     gauge the assertions below check *)
  let basis = Polybasis.Basis.linear 40 in
  let m = Polybasis.Basis.size basis in
  let k = 25 in
  let truth =
    Array.init m (fun i -> if i = 0 then 2. else 1. /. float_of_int (i + 1))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.1 *. Stats.Rng.gaussian rng))))
      truth
  in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r:40 in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (0.01 *. Stats.Rng.gaussian rng))
  in
  if observe then begin
    Obs.Trace.start ();
    Obs.Metrics.enable ()
  end;
  let config = { Bmf.Fusion.default_config with cv_folds = 4 } in
  let fitted =
    Bmf.Fusion.fit_design ~rng ~config ~early ~g ~f Bmf.Fusion.Bmf_ps
  in
  Obs.Trace.stop ();
  Obs.Metrics.disable ();
  fitted

let test_fit_bit_identical () =
  fresh ();
  let plain = fit_once ~observe:false () in
  check_int "plain run recorded nothing" 0
    (List.length (Obs.Trace.events ()));
  let traced = fit_once ~observe:true () in
  check_bool "traced run produced spans" true
    (List.length (Obs.Trace.events ()) > 0);
  let a = plain.Bmf.Fusion.coeffs and b = traced.Bmf.Fusion.coeffs in
  check_int "same coefficient count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      check_bool
        (Printf.sprintf "coefficient %d bit-identical" i)
        true
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))))
    a;
  check_bool "same hyper" true
    (Int64.equal
       (Int64.bits_of_float plain.Bmf.Fusion.hyper)
       (Int64.bits_of_float traced.Bmf.Fusion.hyper));
  (* and the traced run did surface the numerical-health telemetry *)
  let gauge_set name =
    match Obs.Metrics.find_gauge name with
    | Some g -> Obs.Metrics.gauge_is_set g
    | None -> false
  in
  check_bool "woodbury cond recorded" true (gauge_set "bmf_fit_woodbury_cond");
  check_bool "train residual recorded" true
    (gauge_set "bmf_fit_train_residual_norm");
  fresh ()

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic clamp" `Quick test_clock_monotonic ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "sibling order" `Quick test_span_sibling_order;
          Alcotest.test_case "disabled is inert" `Quick
            test_span_disabled_is_inert;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
          Alcotest.test_case "buffer limit" `Quick test_span_buffer_limit;
          Alcotest.test_case "json round-trip" `Quick test_trace_json_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "gating" `Quick test_metrics_gating;
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick
            test_histogram_validation;
          Alcotest.test_case "json dump" `Quick test_metrics_json;
          Alcotest.test_case "labeled series" `Quick test_labeled_series;
          Alcotest.test_case "label escaping and names" `Quick
            test_label_escaping_and_names;
        ] );
      ( "events",
        [ Alcotest.test_case "bounded ring" `Quick test_events_ring ] );
      ( "integration",
        [
          Alcotest.test_case "fit bit-identical with tracing" `Quick
            test_fit_bit_identical;
        ] );
    ]
