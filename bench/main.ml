(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Sec. V), then runs Bechamel micro-benchmarks of the
   fitting kernels behind each of them.

   Scale is selected by the BMF_BENCH_SCALE environment variable or a
   command-line argument: "quick" | "default" | "paper".

   Besides the human-readable report, the run ends by writing a
   machine-readable summary — section wall-clock timings, Bechamel
   per-run estimates and the full metrics registry — as JSON to
   $BMF_BENCH_JSON (default "bench-summary.json"). *)

let scale_of_string s =
  match Experiments.Config.of_scale_name s with
  | Some cfg -> cfg
  | None ->
      Printf.eprintf "unknown scale %S (want %s)\n" s
        (String.concat "|" Experiments.Config.scale_names);
      exit 2

let scale_name = ref "default"

let config () =
  let from_env = Sys.getenv_opt "BMF_BENCH_SCALE" in
  let from_argv = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let scale =
    match (from_argv, from_env) with
    | Some s, _ -> s
    | None, Some s -> s
    | None, None -> "default"
  in
  scale_name := scale;
  Printf.printf "bench scale: %s\n%!" scale;
  scale_of_string scale

let progress msg = Printf.eprintf "  .. %s\n%!" msg

let section title =
  Printf.printf "\n%s\n%s\n%s\n%!" (String.make 72 '=') title
    (String.make 72 '=')

(* (section name, wall-clock seconds), accumulated for the summary. *)
let section_timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let out = f () in
  let seconds = Unix.gettimeofday () -. t0 in
  section_timings := (name, seconds) :: !section_timings;
  Printf.printf "%s\n[%s regenerated in %.1f s]\n%!" out name seconds;
  out

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels behind each experiment.   *)

let bechamel_tests (cfg : Experiments.Config.t) =
  let open Bechamel in
  (* a representative mid-size problem from the RO benchmark *)
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create 99 in
  let k = 100 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let problem =
    {
      Experiments.Methods.g;
      f;
      early = prep.early;
      cv_folds = cfg.cv_folds;
      omp_max_terms = Experiments.Config.omp_max_terms cfg ~k;
    }
  in
  let simulate_one =
    let x = Stats.Rng.gaussian_vec rng tb.Circuit.Testbench.layout_dim in
    fun () ->
      tb.Circuit.Testbench.simulate ~stage:Circuit.Stage.Layout ~metric
        ~noise:None x
  in
  [
    (* Tables I-III & V: the two fitters being compared *)
    Test.make ~name:"tables:omp-fit-k100"
      (Staged.stage (fun () ->
           ignore (Experiments.Methods.fit Experiments.Methods.Omp problem)));
    Test.make ~name:"tables:bmf-ps-fit-k100"
      (Staged.stage (fun () ->
           ignore (Experiments.Methods.fit Experiments.Methods.Bmf_ps problem)));
    (* Tables IV & VI: one "simulation" sample (the dominant real cost) *)
    Test.make ~name:"cost:simulate-one-sample"
      (Staged.stage (fun () -> ignore (simulate_one ())));
    (* Figs 5 & 8: MAP solve, conventional vs fast *)
    Test.make ~name:"fig5:map-solve-cholesky"
      (Staged.stage (fun () ->
           ignore
             (Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Direct_cholesky ~g
                ~f ~prior ~hyper:1e-3 ())));
    Test.make ~name:"fig5:map-solve-fast"
      (Staged.stage (fun () ->
           ignore
             (Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g ~f
                ~prior ~hyper:1e-3 ())));
    (* Figs 4 & 7: histogram construction *)
    Test.make ~name:"fig4:histogram-3000"
      (Staged.stage
         (let data = Stats.Rng.gaussian_vec rng 3000 in
          fun () -> ignore (Stats.Histogram.build ~bins:24 data)));
  ]

(* ------------------------------------------------------------------ *)
(* Serving subsystem: online updates vs cold refit.                   *)

(* One fitted RO model plus a stream of fresh samples; used both by the
   wall-clock sweep over K and by the Bechamel entries below. *)
let serving_fixture (cfg : Experiments.Config.t) ~k ~k_new =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create (1000 + k) in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let hyper = 1e-3 in
  let meta =
    {
      Serving.Artifact.circuit = "ro";
      metric = "frequency";
      scale = "bench";
      seed = cfg.seed;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior ~hyper ~g ~f ()
  in
  let xs_new, f_new =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:k_new ()
  in
  let g_new = Polybasis.Basis.design_matrix prep.late_basis xs_new in
  let m = Polybasis.Basis.size prep.late_basis in
  let g_full =
    Linalg.Mat.init (k + k_new) m (fun i j ->
        if i < k then Linalg.Mat.get g i j
        else Linalg.Mat.get g_new (i - k) j)
  in
  let f_full = Array.append f f_new in
  let incremental () =
    let upd = Serving.Incremental.of_artifact artifact in
    Serving.Incremental.add_batch upd ~xs:xs_new ~f:f_new;
    Serving.Incremental.coeffs upd
  in
  let refit () =
    Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:g_full
      ~f:f_full ~prior ~hyper ()
  in
  (incremental, refit)

let serving_table (cfg : Experiments.Config.t) =
  let k_new = 10 in
  let best f =
    let reps = 3 in
    let t = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      t := Float.min !t (Unix.gettimeofday () -. t0)
    done;
    !t
  in
  Printf.printf
    "folding K' = %d new samples into a fitted RO frequency model\n\n" k_new;
  Printf.printf "%8s %18s %14s %10s\n" "K" "incremental (ms)" "refit (ms)"
    "speedup";
  List.iter
    (fun k ->
      let incremental, refit = serving_fixture cfg ~k ~k_new in
      let ti = best incremental and tr = best refit in
      Printf.printf "%8d %18.2f %14.2f %9.1fx\n" k (1e3 *. ti) (1e3 *. tr)
        (tr /. Float.max 1e-9 ti))
    [ 50; 100; 200; 400 ]

let serving_bechamel_tests (cfg : Experiments.Config.t) =
  let open Bechamel in
  let incremental, refit = serving_fixture cfg ~k:100 ~k_new:10 in
  [
    Test.make ~name:"serving:incremental-update-k100"
      (Staged.stage (fun () -> ignore (incremental ())));
    Test.make ~name:"serving:full-refit-k110"
      (Staged.stage (fun () -> ignore (refit ())));
  ]

let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:true ()
  in
  let test = Test.make_grouped ~name:"bmf" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let estimates = ref [] in
  Printf.printf "%-40s %16s\n" "benchmark" "time/run";
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (name, ols) ->
               match Analyze.OLS.estimates ols with
               | Some [ est ] ->
                   estimates := (name, est) :: !estimates;
                   let value, unit_ =
                     if est >= 1e9 then (est /. 1e9, "s")
                     else if est >= 1e6 then (est /. 1e6, "ms")
                     else if est >= 1e3 then (est /. 1e3, "us")
                     else (est, "ns")
                   in
                   Printf.printf "%-40s %13.2f %s\n" name value unit_
               | _ -> Printf.printf "%-40s %16s\n" name "n/a"))
    merged;
  List.rev !estimates

(* ------------------------------------------------------------------ *)
(* Serving daemon: end-to-end micro-batched prediction throughput over *)
(* a Unix socket (lib/server), recorded into the summary JSON.         *)

let loadgen_summary : Server.Loadgen.summary option ref = ref None

let daemon_loadgen (cfg : Experiments.Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create 1100 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:100 ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let meta =
    {
      Serving.Artifact.circuit = "ro";
      metric = "frequency";
      scale = "bench";
      seed = cfg.seed;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior ~hyper:1e-3 ~g
      ~f ()
  in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bmf-bench-daemon.%d" (Unix.getpid ()))
  in
  ignore (Serving.Store.save ~root artifact);
  (* the shared pool must exist before the server domain spawns, so both
     sides agree on one initialized pool *)
  ignore (Parallel.Pool.run (Array.init 4 (fun i () -> i)));
  let sock = Filename.concat root "bench.sock" in
  (* [`Fast]: the bench measures prediction throughput, not fsync —
     durability overhead is measured separately below *)
  let config =
    { Server.Daemon.default_config with Server.Daemon.durability = `Fast }
  in
  let t = Server.Daemon.create ~config ~root (Server.Daemon.Unix_socket sock) in
  let server = Domain.spawn (fun () -> Server.Daemon.run t) in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop t;
      Domain.join server;
      Array.iter
        (fun f ->
          try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
        (try Sys.readdir root with Sys_error _ -> [||]);
      try Unix.rmdir root with Unix.Unix_error _ -> ())
    (fun () ->
      let summary =
        Server.Loadgen.run ~connections:4 ~duration_s:2. ~batch:64 ~meta
          [ Server.Daemon.address t ]
      in
      loadgen_summary := Some summary;
      Format.printf "%a@." Server.Loadgen.pp summary)

(* ------------------------------------------------------------------ *)
(* Shard scaling: the same closed-loop load against the same store at  *)
(* --shards 1 and --shards 2, with a direct-predictor fingerprint      *)
(* check per shard count (the multi-core plane must stay bit-exact).   *)

let sharding_records : (int * bool * Server.Loadgen.summary) list ref = ref []

let shard_scaling (cfg : Experiments.Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create 1700 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:100 ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let meta =
    {
      Serving.Artifact.circuit = "ro";
      metric = "frequency";
      scale = "bench-shard";
      seed = cfg.seed;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior ~hyper:1e-3 ~g
      ~f ()
  in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bmf-bench-shard.%d" (Unix.getpid ()))
  in
  ignore (Serving.Store.save ~root artifact);
  let r = Polybasis.Basis.dim prep.late_basis in
  let q =
    Stats.Sampling.monte_carlo (Stats.Rng.create 1701) ~k:32 ~r
  in
  let direct =
    Serving.Predictor.predict (Serving.Predictor.of_artifact artifact) q
  in
  ignore (Parallel.Pool.run (Array.init 4 (fun i () -> i)));
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f ->
          try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
        (try Sys.readdir root with Sys_error _ -> [||]);
      try Unix.rmdir root with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun shards ->
          let sock =
            Filename.concat root (Printf.sprintf "shard%d.sock" shards)
          in
          let config =
            {
              Server.Daemon.default_config with
              Server.Daemon.durability = `Fast;
              shards;
            }
          in
          let t =
            Server.Daemon.create ~config ~root
              (Server.Daemon.Unix_socket sock)
          in
          let server = Domain.spawn (fun () -> Server.Daemon.run t) in
          Fun.protect
            ~finally:(fun () ->
              Server.Daemon.stop t;
              Domain.join server)
            (fun () ->
              let addr = Server.Daemon.address t in
              let identical =
                let c = Server.Client.connect addr in
                Fun.protect
                  ~finally:(fun () -> Server.Client.close c)
                  (fun () ->
                    match Server.Client.predict c meta q with
                    | Ok means -> Array.for_all2 Float.equal direct means
                    | Error _ -> false)
              in
              let summary =
                Server.Loadgen.run ~connections:4 ~duration_s:2. ~batch:64
                  ~meta [ addr ]
              in
              sharding_records :=
                (shards, identical, summary) :: !sharding_records;
              Format.printf "shards %d: %.0f req/s, bit-identical: %b@."
                shards summary.Server.Loadgen.throughput_rps identical))
        [ 1; 2 ];
      sharding_records := List.rev !sharding_records)

(* ------------------------------------------------------------------ *)
(* Replication: WAL shipping from a leader to an in-process follower — *)
(* entries shipped per second, follower apply latency (from the        *)
(* bmf_repl_apply_seconds histogram) and read throughput served off    *)
(* the follower while it tails the leader.                             *)

let replication_record : string option ref = ref None

(* Upper bound of the bucket where the cumulative count crosses q — the
   standard histogram-quantile estimate (an upper bound on the true
   quantile at bucket resolution). *)
let histogram_quantile h q =
  let buckets = Obs.Metrics.histogram_buckets h in
  let total = Array.fold_left (fun a (_, c) -> a + c) 0 buckets in
  if total = 0 then nan
  else begin
    let target =
      int_of_float (Float.round (q *. float_of_int total)) |> Stdlib.max 1
    in
    let rec walk i cum =
      if i >= Array.length buckets then infinity
      else
        let bound, c = buckets.(i) in
        if cum + c >= target then bound else walk (i + 1) (cum + c)
    in
    walk 0 0
  end

let replication_bench (cfg : Experiments.Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create 1300 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:100 ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let meta =
    {
      Serving.Artifact.circuit = "ro";
      metric = "frequency";
      scale = "bench-repl";
      seed = cfg.seed;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior ~hyper:1e-3 ~g
      ~f ()
  in
  let tmp = Filename.get_temp_dir_name () in
  let leader_root =
    Filename.concat tmp (Printf.sprintf "bmf-bench-repl-l.%d" (Unix.getpid ()))
  and follower_root =
    Filename.concat tmp (Printf.sprintf "bmf-bench-repl-f.%d" (Unix.getpid ()))
  in
  ignore (Serving.Store.save ~root:leader_root artifact);
  ignore (Parallel.Pool.run (Array.init 4 (fun i () -> i)));
  let laddr = Server.Daemon.Unix_socket (Filename.concat leader_root "l.sock")
  and faddr =
    Server.Daemon.Unix_socket (Filename.concat follower_root "f.sock")
  in
  let config =
    { Server.Daemon.default_config with Server.Daemon.durability = `Fast }
  in
  let leader = Server.Daemon.create ~config ~root:leader_root laddr in
  let ld = Domain.spawn (fun () -> Server.Daemon.run leader) in
  let follower =
    Server.Daemon.create ~config ~follow:laddr ~root:follower_root faddr
  in
  let fd = Domain.spawn (fun () -> Server.Daemon.run follower) in
  let rmrf root =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
      (try Sys.readdir root with Sys_error _ -> [||]);
    try Unix.rmdir root with Unix.Unix_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop follower;
      Server.Daemon.stop leader;
      Domain.join fd;
      Domain.join ld;
      rmrf follower_root;
      rmrf leader_root)
    (fun () ->
      let cl = Server.Client.connect laddr in
      let cf = Server.Client.connect faddr in
      Fun.protect
        ~finally:(fun () ->
          Server.Client.close cf;
          Server.Client.close cl)
        (fun () ->
          (* snapshot catch-up: wait until the follower serves the model *)
          let deadline = Unix.gettimeofday () +. 15. in
          let rec wait_model () =
            let served =
              match Server.Client.list_models cf with
              | Ok infos ->
                  List.exists
                    (fun (i : Server.Wire.model_info) -> i.meta = meta)
                    infos
              | Error _ -> false
            in
            if served then ()
            else if Unix.gettimeofday () > deadline then
              failwith "replication bench: follower never caught up"
            else begin
              Unix.sleepf 0.02;
              wait_model ()
            end
          in
          wait_model ();
          let entries = 30 in
          let t0 = Unix.gettimeofday () in
          for i = 1 to entries do
            let rng = Stats.Rng.create (4000 + i) in
            let xs, f =
              Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
                ~metric ~rng ~k:10 ()
            in
            match Server.Client.update cl meta ~xs ~f with
            | Ok _ -> ()
            | Error e ->
                failwith ("replication bench: update: " ^ e.Server.Wire.message)
          done;
          let update_wall = Unix.gettimeofday () -. t0 in
          (* drain: the follower's applied sequence reaches the leader's *)
          let rec wait_seq () =
            match Server.Client.stats cf with
            | Ok st when st.Server.Client.journal_seq >= entries -> ()
            | _ when Unix.gettimeofday () > deadline ->
                failwith "replication bench: follower never drained the stream"
            | _ ->
                Unix.sleepf 0.005;
                wait_seq ()
          in
          wait_seq ();
          let catchup_wall = Unix.gettimeofday () -. t0 in
          let shipped_per_s =
            float_of_int entries /. Float.max 1e-9 catchup_wall
          in
          let apply_h = Obs.Metrics.histogram "bmf_repl_apply_seconds" in
          let p50 = histogram_quantile apply_h 0.50
          and p99 = histogram_quantile apply_h 0.99 in
          let lag =
            match Obs.Metrics.find_gauge "bmf_repl_lag_entries" with
            | Some g when Obs.Metrics.gauge_is_set g ->
                Obs.Metrics.gauge_value g
            | _ -> 0.
          in
          (* reads served off the follower while it tails the leader *)
          let lg =
            Server.Loadgen.run ~connections:2 ~duration_s:1.5 ~batch:64 ~meta
              [ faddr ]
          in
          Printf.printf
            "replication: %d entries shipped in %.3f s (%.0f entries/s, \
             updates took %.3f s)\n\
             follower apply latency: p50 <= %.3f ms, p99 <= %.3f ms; final \
             lag %.0f entries\n"
            entries catchup_wall shipped_per_s update_wall (1e3 *. p50)
            (1e3 *. p99) lag;
          Format.printf "follower reads: %a@." Server.Loadgen.pp lg;
          let jf v =
            if Float.is_finite v then Printf.sprintf "%.6f" v else "null"
          in
          replication_record :=
            Some
              (Printf.sprintf
                 "{\"entries\":%d,\"update_wall_s\":%s,\"catchup_wall_s\":%s,\
                  \"shipped_per_s\":%s,\"apply_p50_s\":%s,\"apply_p99_s\":%s,\
                  \"lag_entries\":%s,\"follower_loadgen\":%s}"
                 entries (jf update_wall) (jf catchup_wall) (jf shipped_per_s)
                 (jf p50) (jf p99) (jf lag)
                 (Server.Loadgen.to_json lg))))

(* ------------------------------------------------------------------ *)
(* Durability overhead: `Fast` vs `Durable` artifact saves and the     *)
(* write-ahead journal append, on the same artifact the daemon bench   *)
(* serves — quantifies what the fsync discipline costs per update.     *)

(* (operation, seconds per op), for the summary JSON. *)
let durability_timings : (string * float) list ref = ref []

let durability_overhead (cfg : Experiments.Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create 1100 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:100 ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let meta =
    {
      Serving.Artifact.circuit = "ro";
      metric = "frequency";
      scale = "bench-durability";
      seed = cfg.seed;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior ~hyper:1e-3 ~g
      ~f ()
  in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bmf-bench-durability.%d" (Unix.getpid ()))
  in
  let ops = 20 in
  let record name f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to ops do
      f ()
    done;
    let per_op = (Unix.gettimeofday () -. t0) /. float_of_int ops in
    durability_timings := (name, per_op) :: !durability_timings;
    Printf.printf "  %-16s %8.3f ms/op  (%d ops)\n" name (1e3 *. per_op) ops
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f ->
          try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
        (try Sys.readdir root with Sys_error _ -> [||]);
      try Unix.rmdir root with Unix.Unix_error _ -> ())
    (fun () ->
      record "save_fast" (fun () ->
          ignore (Serving.Store.save ~durability:`Fast ~root artifact));
      record "save_durable" (fun () ->
          ignore (Serving.Store.save ~durability:`Durable ~root artifact));
      let entry = { Serving.Journal.meta; base_rev = 0; xs; f } in
      let jf = Serving.Journal.open_ ~durability:`Fast ~root () in
      record "journal_fast" (fun () -> Serving.Journal.append jf entry);
      Serving.Journal.close jf;
      let jd = Serving.Journal.open_ ~durability:`Durable ~root () in
      record "journal_durable" (fun () -> Serving.Journal.append jd entry);
      Serving.Journal.close jd;
      durability_timings := List.rev !durability_timings)

(* ------------------------------------------------------------------ *)
(* Kernel plane: the allocating serving kernels vs their preallocated  *)
(* [_into] twins (bit-identical outputs by construction), plus the     *)
(* minor-heap words per query on the arena path — the number the CI    *)
(* allocation gate bounds.                                             *)

(* (name, value) pairs: *_ns_per_call timings and *_minor_words_per_query. *)
let kernel_records : (string * float) list ref = ref []

let kernel_plane_bench (cfg : Experiments.Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create 2300 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:100 ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let meta =
    {
      Serving.Artifact.circuit = "ro";
      metric = "frequency";
      scale = "bench-kernels";
      seed = cfg.seed;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior ~hyper:1e-3 ~g
      ~f ()
  in
  let pred = Serving.Predictor.of_artifact artifact in
  let batch = 64 in
  let r = Polybasis.Basis.dim prep.late_basis in
  let q = Stats.Sampling.monte_carlo (Stats.Rng.create 2301) ~k:batch ~r in
  let scratch = Serving.Predictor.Scratch.create ~capacity:batch pred in
  let means = Array.make batch 0. and stds = Array.make batch 0. in
  let record name v = kernel_records := (name, v) :: !kernel_records in
  let time_per_call name f =
    f ();
    f ();
    let iters = 200 in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      best :=
        Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int iters)
    done;
    record (name ^ "_ns_per_call") (1e9 *. !best);
    Printf.printf "  %-34s %10.2f us/call\n" name (1e6 *. !best)
  in
  (* batch-64 predict: allocating vs arena, means-only and mean+std *)
  time_per_call "predict" (fun () -> ignore (Serving.Predictor.predict pred q));
  time_per_call "predict_into" (fun () ->
      Serving.Predictor.predict_into pred ~scratch q ~means);
  time_per_call "predict_with_std" (fun () ->
      ignore (Serving.Predictor.predict_with_std pred q));
  time_per_call "predict_with_std_into" (fun () ->
      Serving.Predictor.predict_with_std_into pred ~scratch q ~means ~stds);
  (* raw gemv on the stored posterior core *)
  let gm = artifact.Serving.Artifact.g in
  let x = Array.make (Linalg.Mat.cols gm) 1.0 in
  let y = Array.make (Linalg.Mat.rows gm) 0. in
  time_per_call "gemv" (fun () -> ignore (Linalg.Mat.gemv gm x));
  time_per_call "gemv_into" (fun () -> Linalg.Mat.gemv_into gm x y);
  (* design-matrix assembly: blocked (allocating) vs arena *)
  let dst = Linalg.Mat.create batch (Polybasis.Basis.size prep.late_basis) in
  let bscratch = Polybasis.Basis.Scratch.create prep.late_basis in
  time_per_call "design_matrix_blocked" (fun () ->
      ignore (Polybasis.Basis.design_matrix_blocked prep.late_basis q));
  time_per_call "design_matrix_into" (fun () ->
      Polybasis.Basis.design_matrix_into prep.late_basis ~scratch:bscratch q
        ~dst);
  (* steady-state minor-heap traffic on the arena path *)
  let words_per_query f =
    for _ = 1 to 3 do
      f ()
    done;
    let calls = 50 in
    let w0 = Gc.minor_words () in
    for _ = 1 to calls do
      f ()
    done;
    (Gc.minor_words () -. w0) /. float_of_int (calls * batch)
  in
  let wp =
    words_per_query (fun () ->
        Serving.Predictor.predict_into pred ~scratch q ~means)
  in
  let wps =
    words_per_query (fun () ->
        Serving.Predictor.predict_with_std_into pred ~scratch q ~means ~stds)
  in
  record "predict_into_minor_words_per_query" wp;
  record "predict_with_std_into_minor_words_per_query" wps;
  Printf.printf
    "  minor words/query: predict_into %.3f, predict_with_std_into %.3f\n" wp
    wps;
  kernel_records := List.rev !kernel_records

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ensemble: BMA over two amp models vs the best single member —       *)
(* held-out RMSE and empirical 2-sigma coverage, where the ensemble    *)
(* interval uses the decomposed variance (within + between).           *)

(* JSON fragment for the summary file. *)
let ensemble_record : string option ref = ref None

let ensemble_accuracy (cfg : Experiments.Config.t) =
  let tb = Circuit.Amplifier.testbench (Circuit.Amplifier.create cfg.seed) in
  let metric = Circuit.Amplifier.offset_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create (cfg.seed + 331) in
  let draw k =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k ()
  in
  let fusion_cfg = { Bmf.Fusion.default_config with cv_folds = cfg.cv_folds } in
  let member ~seed ~k =
    let xs, f = draw k in
    let g = Polybasis.Basis.design_matrix prep.late_basis xs in
    let fitted =
      Bmf.Fusion.fit_design
        ~rng:(Stats.Rng.create (seed + 97))
        ~config:fusion_cfg ~early:prep.early ~g ~f Bmf.Fusion.Bmf_ps
    in
    let meta =
      {
        Serving.Artifact.circuit = "amp";
        metric = tb.metrics.(metric);
        scale = "bench-ensemble";
        seed;
      }
    in
    ( k,
      Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior:fitted.prior
        ~hyper:fitted.hyper ~g ~f () )
  in
  (* founder fitted on a starved budget; the canaried revision sees 12x the
     late-stage samples and must earn its weight through evidence alone
     (it starts from the ln 1e-6 canary prior) *)
  let members = [| member ~seed:cfg.seed ~k:8; member ~seed:(cfg.seed + 1) ~k:96 |] in
  let st =
    Array.fold_left
      (fun st (_, a) ->
        match Ensemble.State.add st a.Serving.Artifact.meta with
        | Ok st -> st
        | Error e -> failwith e)
      (Ensemble.State.create "bench")
      members
  in
  let predictors =
    Array.map (fun (_, a) -> Serving.Predictor.of_artifact a) members
  in
  (* evidence stream: score each fresh batch under every member's current
     predictive density, then fold the increments in — the same
     score-then-commit protocol the daemon's update path runs *)
  let rounds = 16 and batch = 16 in
  let st = ref st in
  for _ = 1 to rounds do
    let xs, f = draw batch in
    let increments =
      Array.map
        (fun p ->
          let means, stds = Serving.Predictor.predict_with_std p xs in
          (Ensemble.Evidence.score ~means ~stds f, batch))
        predictors
    in
    st := Ensemble.State.record !st increments
  done;
  let st = !st in
  let weights = Ensemble.State.weights st in
  (* held-out evaluation *)
  let holdout = 256 in
  let xs_test, f_test = draw holdout in
  let rmse means =
    let acc = ref 0. in
    Array.iteri (fun i m -> acc := !acc +. (((m -. f_test.(i)) ** 2.))) means;
    sqrt (!acc /. float_of_int holdout)
  in
  let coverage means std_of =
    let hits = ref 0 in
    Array.iteri
      (fun i m ->
        if Float.abs (f_test.(i) -. m) <= 2. *. std_of i then incr hits)
      means;
    float_of_int !hits /. float_of_int holdout
  in
  let per_member =
    Array.map
      (fun p ->
        let means, stds = Serving.Predictor.predict_with_std p xs_test in
        (rmse means, coverage means (fun i -> stds.(i))))
      predictors
  in
  let e_means, e_within, e_between =
    Ensemble.Predictor.predict st (Array.map Option.some predictors) xs_test
  in
  let e_rmse = rmse e_means in
  let e_cov =
    coverage e_means (fun i -> sqrt (e_within.(i) +. e_between.(i)))
  in
  let best_rmse = Array.fold_left (fun a (r, _) -> Float.min a r) infinity per_member in
  Printf.printf
    "amp %s: %d evidence batches of %d points, %d held-out points\n\n"
    tb.metrics.(metric) rounds batch holdout;
  Printf.printf "%-22s %6s %14s %12s %8s\n" "member" "K" "holdout RMSE"
    "2s coverage" "weight";
  Array.iteri
    (fun i (k, (a : Serving.Artifact.t)) ->
      let r, c = per_member.(i) in
      Printf.printf "%-22s %6d %14.4f %12.3f %8.4f\n"
        (Printf.sprintf "amp/%s seed=%d" a.meta.metric a.meta.seed)
        k r c weights.(i))
    members;
  Printf.printf "%-22s %6s %14.4f %12.3f %8s\n" "BMA ensemble" "-" e_rmse e_cov
    "-";
  Printf.printf "\nensemble RMSE / best single member RMSE: %.3f\n"
    (e_rmse /. Float.max 1e-12 best_rmse);
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"circuit\":\"amp\",\"metric\":\"%s\",\"holdout\":%d,\"members\":["
       (json_escape tb.metrics.(metric))
       holdout);
  Array.iteri
    (fun i (k, (a : Serving.Artifact.t)) ->
      let r, c = per_member.(i) in
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seed\":%d,\"k\":%d,\"rmse\":%.6f,\"coverage\":%.4f,\"weight\":%.6f}"
           a.meta.seed k r c weights.(i)))
    members;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"ensemble\":{\"rmse\":%.6f,\"coverage\":%.4f},\"best_member_rmse\":%.6f}"
       e_rmse e_cov best_rmse);
  ensemble_record := Some (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Parallel CV sweep: wall-clock speedup curve over -j, with the       *)
(* determinism bar checked on the spot.                                *)

(* (jobs, best seconds, bit-identical to -j 1), for the summary JSON. *)
let parallel_timings : (int * float * bool) list ref = ref []

let parallel_cv_sweep (cfg : Experiments.Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let rng = Stats.Rng.create 4242 in
  let k = 240 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let prior = Bmf.Prior.nonzero_mean prep.early in
  let candidates =
    Bmf.Hyper.auto_grid ~per_decade:2 ~g ~f ~prior ()
  in
  let sweep jobs =
    Parallel.Pool.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.set_default_jobs 0)
      (fun () ->
        Bmf.Hyper.cv_errors
          ~rng:(Stats.Rng.create 7)
          ~folds:8 ~g ~f ~prior ~candidates ())
  in
  let best f =
    let reps = 3 in
    let t = ref infinity and out = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      t := Float.min !t (Unix.gettimeofday () -. t0);
      out := Some r
    done;
    (Option.get !out, !t)
  in
  Printf.printf
    "CV fold sweep: K = %d, %d folds x %d candidates (RO frequency)\n\
     recommended domains on this host: %d\n\n"
    k 8 (List.length candidates)
    (Domain.recommended_domain_count ());
  Printf.printf "%6s %14s %10s %12s\n" "-j" "seconds" "speedup" "identical";
  ignore (sweep 1) (* warm up allocators and code paths *);
  let baseline, t1 = best (fun () -> sweep 1) in
  parallel_timings := [];
  List.iter
    (fun jobs ->
      let scored, t = if jobs = 1 then (baseline, t1) else best (fun () -> sweep jobs) in
      let identical =
        List.for_all2
          (fun (c1, e1) (cj, ej) ->
            Int64.bits_of_float c1 = Int64.bits_of_float cj
            && Int64.bits_of_float e1 = Int64.bits_of_float ej)
          baseline scored
      in
      if not identical then
        failwith
          (Printf.sprintf
             "parallel CV sweep at -j %d diverged from the sequential bits"
             jobs);
      parallel_timings := (jobs, t, identical) :: !parallel_timings;
      Printf.printf "%6d %14.3f %9.2fx %12s\n" jobs t
        (t1 /. Float.max 1e-9 t)
        (if identical then "yes" else "NO"))
    [ 1; 2; 4; 8 ];
  parallel_timings := List.rev !parallel_timings

(* ------------------------------------------------------------------ *)
(* Machine-readable summary: BENCH_SUMMARY line + JSON file.          *)

let summary_json ~total_seconds ~microbench =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"bench\":\"bmf\",\"scale\":\"%s\",\"total_seconds\":%.3f"
       (json_escape !scale_name) total_seconds);
  Buffer.add_string buf ",\"sections\":[";
  List.iteri
    (fun i (name, seconds) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"seconds\":%.6f}" (json_escape name)
           seconds))
    (List.rev !section_timings);
  Buffer.add_string buf "],\"microbench_ns_per_run\":[";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"ns\":%.3f}" (json_escape name) ns))
    microbench;
  (* the metrics registry as recorded over the whole run (collection is
     enabled for the duration of main); Metrics.to_json is already a
     JSON document, spliced in verbatim *)
  Buffer.add_string buf "],\"parallel_cv\":[";
  let t1 =
    match !parallel_timings with (1, t, _) :: _ -> t | _ -> Float.nan
  in
  List.iteri
    (fun i (jobs, seconds, identical) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"jobs\":%d,\"seconds\":%.6f,\"speedup\":%.3f,\"identical\":%b}"
           jobs seconds
           (t1 /. Float.max 1e-9 seconds)
           identical))
    !parallel_timings;
  Buffer.add_string buf "],\"loadgen\":";
  (match !loadgen_summary with
  | Some s -> Buffer.add_string buf (Server.Loadgen.to_json s)
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"sharding\":[";
  let rps1 =
    match !sharding_records with
    | (1, _, s) :: _ -> s.Server.Loadgen.throughput_rps
    | _ -> Float.nan
  in
  List.iteri
    (fun i (shards, identical, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"shards\":%d,\"identical\":%b,\"speedup\":%.3f,\"loadgen\":%s}"
           shards identical
           (s.Server.Loadgen.throughput_rps /. Float.max 1e-9 rps1)
           (Server.Loadgen.to_json s)))
    !sharding_records;
  Buffer.add_string buf "],\"replication\":";
  (match !replication_record with
  | Some s -> Buffer.add_string buf s
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"durability\":[";
  List.iteri
    (fun i (name, seconds) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"op\":\"%s\",\"seconds_per_op\":%.6f}"
           (json_escape name) seconds))
    !durability_timings;
  Buffer.add_string buf "],\"kernels\":[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"value\":%.6f}" (json_escape name)
           v))
    !kernel_records;
  Buffer.add_string buf "]";
  Buffer.add_string buf ",\"ensemble\":";
  (match !ensemble_record with
  | Some s -> Buffer.add_string buf s
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"metrics\":";
  Buffer.add_string buf (Obs.Metrics.to_json ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_summary ~total_seconds ~microbench =
  let path =
    match Sys.getenv_opt "BMF_BENCH_JSON" with
    | Some p -> p
    | None -> "bench-summary.json"
  in
  let json = summary_json ~total_seconds ~microbench in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "BENCH_SUMMARY sections=%d microbench=%d total=%.1fs -> %s\n"
    (List.length !section_timings) (List.length microbench) total_seconds path

(* ------------------------------------------------------------------ *)

let () =
  let cfg = config () in
  let t_start = Unix.gettimeofday () in
  (* metrics on for the whole run so the summary carries solver counters,
     condition gauges and latency histograms for every regeneration *)
  Obs.Metrics.enable ();
  Format.printf "config: %a@." Experiments.Config.pp cfg;

  section "Figures 1-3: prior illustrations and RO schematic";
  print_string (Experiments.Figures.fig1 ());
  print_newline ();
  print_string (Experiments.Figures.fig2 ());
  print_newline ();
  print_string (Experiments.Figures.fig3 cfg);

  section "Figure 4: RO sample histograms";
  ignore (timed "fig4" (fun () -> Experiments.Figures.fig4 cfg));

  section "Table I: RO power";
  ignore (timed "table1" (fun () -> Experiments.Tables.table1 ~progress cfg));

  section "Table II: RO phase noise";
  ignore (timed "table2" (fun () -> Experiments.Tables.table2 ~progress cfg));

  section "Table III: RO frequency";
  ignore (timed "table3" (fun () -> Experiments.Tables.table3 ~progress cfg));

  section "Figure 5: RO fitting cost (OMP vs BMF-PS direct vs fast)";
  ignore (timed "fig5" (fun () -> Experiments.Figures.fig5 cfg));

  section "Table IV: RO error and cost";
  ignore (timed "table4" (fun () -> Experiments.Tables.table4 ~progress cfg));

  section "Figure 6: SRAM read-path schematic";
  print_string (Experiments.Figures.fig6 cfg);

  section "Figure 7: SRAM read-delay histogram";
  ignore (timed "fig7" (fun () -> Experiments.Figures.fig7 cfg));

  section "Table V: SRAM read delay";
  ignore (timed "table5" (fun () -> Experiments.Tables.table5 ~progress cfg));

  section "Figure 8: SRAM fitting cost";
  ignore (timed "fig8" (fun () -> Experiments.Figures.fig8 cfg));

  section "Table VI: SRAM error and cost";
  ignore (timed "table6" (fun () -> Experiments.Tables.table6 ~progress cfg));

  section "Serving: incremental update vs full refit (wall clock)";
  ignore (timed "serving" (fun () -> serving_table cfg; ""));

  section "Serving daemon: micro-batched predictions over a Unix socket";
  ignore (timed "daemon_loadgen" (fun () -> daemon_loadgen cfg; ""));

  section "Shard scaling: loadgen at --shards 1 vs 2 (bit-exact)";
  ignore (timed "sharding" (fun () -> shard_scaling cfg; ""));

  section "Replication: WAL shipping to an in-process follower";
  ignore (timed "replication" (fun () -> replication_bench cfg; ""));

  section "Durability: Fast vs Durable saves and journal appends";
  ignore (timed "durability" (fun () -> durability_overhead cfg; ""));

  section "Kernel plane: allocating kernels vs preallocated _into twins";
  ignore (timed "kernels" (fun () -> kernel_plane_bench cfg; ""));

  section "Ensemble: BMA vs best single member (amp held-out accuracy)";
  ignore (timed "ensemble" (fun () -> ensemble_accuracy cfg; ""));

  section "Parallel CV sweep: speedup over -j (bit-identical by construction)";
  ignore (timed "parallel_cv" (fun () -> parallel_cv_sweep cfg; ""));

  section "Bechamel micro-benchmarks (kernels behind each artifact)";
  let microbench =
    run_bechamel (bechamel_tests cfg @ serving_bechamel_tests cfg)
  in

  Obs.Metrics.disable ();
  print_newline ();
  write_summary ~total_seconds:(Unix.gettimeofday () -. t_start) ~microbench;
  print_endline "bench: all tables and figures regenerated."
